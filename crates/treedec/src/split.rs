//! The `Split` procedure (paper §3.3 step 2, Fig. 1): carve a rooted tree
//! into split trees of µ-size within [µ(G)/(12t), µ(G)/(4t)], vertex
//! disjoint except for shared roots.

use crate::config::SepConfig;
use std::collections::HashMap;

/// A rooted tree over global vertex ids, stored as (member, parent) pairs
/// (`parent == member` marks the root). Trees produced by `Split` may share
/// their root vertex with siblings — exactly the paper's invariant.
#[derive(Clone, Debug)]
pub struct STree {
    /// The root vertex.
    pub root: u32,
    /// Members with parent pointers; contains the root.
    pub nodes: Vec<(u32, u32)>,
}

impl STree {
    /// A single-vertex tree.
    pub fn singleton(v: u32) -> Self {
        STree {
            root: v,
            nodes: vec![(v, v)],
        }
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no vertices (never produced by `Split`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Member vertex list.
    pub fn members(&self) -> Vec<u32> {
        self.nodes.iter().map(|&(v, _)| v).collect()
    }

    /// Total µ-measure of the members.
    pub fn mu(&self, mu: &[u64]) -> u64 {
        self.nodes.iter().map(|&(v, _)| mu[v as usize]).sum()
    }

    fn children_map(&self) -> HashMap<u32, Vec<u32>> {
        let mut ch: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(v, p) in &self.nodes {
            ch.entry(v).or_default();
            if p != v {
                ch.entry(p).or_default().push(v);
            }
        }
        for list in ch.values_mut() {
            list.sort_unstable();
        }
        ch
    }

    /// µ-size of every member's subtree (iterative post-order).
    pub fn subtree_sizes(&self, mu: &[u64]) -> HashMap<u32, u64> {
        let ch = self.children_map();
        let mut sizes: HashMap<u32, u64> = HashMap::new();
        let mut stack = vec![(self.root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                let mut s = mu[v as usize];
                for &c in &ch[&v] {
                    s += sizes[&c];
                }
                sizes.insert(v, s);
            } else {
                stack.push((v, true));
                for &c in &ch[&v] {
                    stack.push((c, false));
                }
            }
        }
        sizes
    }

    /// µ-centroid: every component of `T − c` has µ ≤ µ(T)/2. Deterministic
    /// tie-break by vertex id.
    pub fn centroid(&self, mu: &[u64]) -> u32 {
        let total = self.mu(mu);
        let sizes = self.subtree_sizes(mu);
        let ch = self.children_map();
        let mut best = None;
        for &(v, _) in &self.nodes {
            let mut worst = total - sizes[&v];
            for &c in &ch[&v] {
                worst = worst.max(sizes[&c]);
            }
            if 2 * worst <= total {
                best = match best {
                    None => Some(v),
                    Some(b) if v < b => Some(v),
                    other => other,
                };
            }
        }
        best.expect("nonempty tree has a centroid")
    }

    /// The same tree re-rooted at `new_root`.
    pub fn rerooted(&self, new_root: u32) -> STree {
        let mut parent: HashMap<u32, u32> = self.nodes.iter().copied().collect();
        assert!(parent.contains_key(&new_root), "new root not a member");
        let mut path = vec![new_root];
        let mut cur = new_root;
        while parent[&cur] != cur {
            cur = parent[&cur];
            path.push(cur);
        }
        for w in path.windows(2) {
            parent.insert(w[1], w[0]);
        }
        parent.insert(new_root, new_root);
        STree {
            root: new_root,
            nodes: self.nodes.iter().map(|&(v, _)| (v, parent[&v])).collect(),
        }
    }

    /// The subtree rooted at `v` as its own tree.
    pub fn subtree(&self, v: u32) -> STree {
        let ch = self.children_map();
        let mut nodes = vec![(v, v)];
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            for &c in &ch[&u] {
                nodes.push((c, u));
                stack.push(c);
            }
        }
        STree { root: v, nodes }
    }
}

/// Output of one `Split` invocation on one tree.
#[derive(Clone, Debug, Default)]
pub struct SplitOutcome {
    /// Split trees within the target window → the paper's T_i.
    pub finished: Vec<STree>,
    /// Still-too-big trees → back into T for further splitting.
    pub requeue: Vec<STree>,
}

/// Is `x ≥ µ(G)/(lo·t)` (exact rational comparison)?
#[inline]
fn ge_lo(x: u64, mu_g: u64, t: u64, cfg: &SepConfig) -> bool {
    x * cfg.split_lo * t >= mu_g
}

/// Is `x > µ(G)/(hi·t)`?
#[inline]
fn gt_hi(x: u64, mu_g: u64, t: u64, cfg: &SepConfig) -> bool {
    x * cfg.split_hi * t > mu_g
}

/// One `Split` invocation (paper §3.3 step 2): center, carve heavy child
/// subtrees, then either merge a light remainder or group light children
/// into sibling trees sharing the center as root.
pub fn split_tree(tree: &STree, mu: &[u64], mu_g: u64, t: u64, cfg: &SepConfig) -> SplitOutcome {
    let mut out = SplitOutcome::default();
    let total = tree.mu(mu);
    let c = tree.centroid(mu);
    let t1 = tree.rerooted(c);
    let sizes = t1.subtree_sizes(mu);
    let ch = t1.children_map()[&c].clone();

    let mut heavy: Vec<STree> = Vec::new();
    let mut light: Vec<u32> = Vec::new();
    for v in ch {
        if ge_lo(sizes[&v], mu_g, t, cfg) {
            heavy.push(t1.subtree(v));
        } else {
            light.push(v);
        }
    }
    let heavy_mu: u64 = heavy.iter().map(|h| h.mu(mu)).sum();
    let tprime_mu = total - heavy_mu;

    let mut produced: Vec<STree> = Vec::new();
    if !heavy.is_empty() && !ge_lo(tprime_mu, mu_g, t, cfg) {
        // Fig. 1(a): T' is light — merge it into the first heavy subtree.
        let absorbed = heavy.remove(0);
        let mut nodes: Vec<(u32, u32)> = vec![(c, c)];
        for &v in &light {
            for &(x, p) in &t1.subtree(v).nodes {
                nodes.push((x, if x == v { c } else { p }));
            }
        }
        for &(x, p) in &absorbed.nodes {
            nodes.push((x, if x == absorbed.root { c } else { p }));
        }
        produced.push(STree { root: c, nodes });
        produced.extend(heavy);
    } else {
        // Fig. 1(b): group consecutive light children into sibling trees
        // rooted at c, each of µ ∈ [µG/(12t), µG/(6t)) except possibly the
        // last which absorbs the remainder (< µG/(4t)).
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut cur: Vec<u32> = Vec::new();
        let mut acc = 0u64;
        for &v in &light {
            cur.push(v);
            acc += sizes[&v];
            if ge_lo(acc, mu_g, t, cfg) {
                groups.push(std::mem::take(&mut cur));
                acc = 0;
            }
        }
        if !cur.is_empty() {
            // Remainder below the lo threshold: absorb into the last group
            // (or stand alone if it is the only one).
            match groups.last_mut() {
                Some(last) => last.append(&mut cur),
                None => groups.push(cur),
            }
        }
        for group in groups {
            let mut nodes: Vec<(u32, u32)> = vec![(c, c)];
            for &v in &group {
                for &(x, p) in &t1.subtree(v).nodes {
                    nodes.push((x, if x == v { c } else { p }));
                }
            }
            produced.push(STree { root: c, nodes });
        }
        if produced.is_empty() {
            // c is the whole tree (no children at all).
            produced.push(STree::singleton(c));
        }
        produced.extend(heavy);
    }

    for tr in produced {
        let m = tr.mu(mu);
        // Safety valve for degenerate tiny-µG corners (only reachable with
        // aggressive practical cutoffs; see lib.rs): a "split" that failed
        // to shrink the tree is finished rather than requeued forever.
        let no_progress = tr.len() == tree.len();
        if gt_hi(m, mu_g, t, cfg) && !no_progress {
            out.requeue.push(tr);
        } else {
            out.finished.push(tr);
        }
    }
    out
}

/// Iterate `Split` until every tree fits the window: the paper's step-2
/// loop producing T_i from the spanning tree `T*`. Returns the final split
/// trees (T_i).
pub fn split_to_completion(
    start: STree,
    mu: &[u64],
    mu_g: u64,
    t: u64,
    cfg: &SepConfig,
) -> Vec<STree> {
    let mut work = vec![start];
    let mut done = Vec::new();
    let mut guard = 0usize;
    while let Some(tree) = work.pop() {
        guard += 1;
        assert!(guard < 64 + 4 * mu.len(), "split failed to terminate");
        if tree.len() <= 1 || !gt_hi(tree.mu(mu), mu_g, t, cfg) {
            done.push(tree);
            continue;
        }
        let out = split_tree(&tree, mu, mu_g, t, cfg);
        done.extend(out.finished);
        work.extend(out.requeue);
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use twgraph::alg::random_spanning_tree;
    use twgraph::gen::{banded_path, random_tree};

    fn tree_of(g: &twgraph::UGraph, seed: u64) -> STree {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rt = random_spanning_tree(g, 0, &mut rng);
        STree {
            root: 0,
            nodes: rt
                .members()
                .into_iter()
                .map(|v| (v, rt.parent[v as usize]))
                .collect(),
        }
    }

    fn cfg() -> SepConfig {
        SepConfig::practical(256)
    }

    #[test]
    fn stree_basics() {
        let t = STree {
            root: 0,
            nodes: vec![(0, 0), (1, 0), (2, 1), (3, 1)],
        };
        let mu = vec![1u64; 4];
        assert_eq!(t.mu(&mu), 4);
        let sizes = t.subtree_sizes(&mu);
        assert_eq!(sizes[&1], 3);
        assert_eq!(sizes[&0], 4);
        assert_eq!(t.centroid(&mu), 1);
        let r = t.rerooted(1);
        assert_eq!(r.root, 1);
        let sizes2 = r.subtree_sizes(&mu);
        assert_eq!(sizes2[&0], 1);
        assert_eq!(sizes2[&1], 4);
        let sub = t.subtree(1);
        assert_eq!(sub.len(), 3);
    }

    /// The paper's invariant: every split tree has µ ≤ µ(G)/(4t) (finished
    /// window) and — except degenerate remainders — µ ≥ µ(G)/(12t); trees
    /// are vertex disjoint except for roots; the union covers T*.
    #[test]
    fn split_invariants_hold() {
        for (n, t) in [(200usize, 2u64), (300, 3), (400, 4)] {
            let g = banded_path(n, 3);
            let start = tree_of(&g, n as u64);
            let mu = vec![1u64; n];
            let mu_g = n as u64;
            let trees = split_to_completion(start, &mu, mu_g, t, &cfg());
            // Window: all finished trees fit under µG/(4t)·(1+slack for the
            // shared roots the tree structurally includes).
            for tr in &trees {
                let m = tr.mu(&mu);
                assert!(
                    4 * t * (m.saturating_sub(1)) <= mu_g,
                    "tree too big: µ={m}, bound {}",
                    mu_g / (4 * t)
                );
            }
            // Coverage and disjointness-except-roots.
            let mut count = vec![0u32; n];
            let mut root_of = vec![false; n];
            for tr in &trees {
                root_of[tr.root as usize] = true;
                for &(v, _) in &tr.nodes {
                    count[v as usize] += 1;
                }
            }
            for v in 0..n {
                assert!(count[v] >= 1, "vertex {v} uncovered");
                if count[v] > 1 {
                    assert!(root_of[v], "non-root vertex {v} shared");
                }
            }
            // Enough trees exist: at least µG/(µG/(4t)) = 4t··(1−slack).
            assert!(
                trees.len() as u64 >= 3 * t,
                "only {} trees for t={t}",
                trees.len()
            );
        }
    }

    #[test]
    fn split_tree_edges_stay_tree_edges() {
        let g = random_tree(150, 9);
        let start = tree_of(&g, 5);
        let mu = vec![1u64; 150];
        let trees = split_to_completion(start, &mu, 150, 2, &cfg());
        for tr in &trees {
            for &(v, p) in &tr.nodes {
                if v != p {
                    assert!(g.has_edge(v, p), "({v},{p}) not an edge");
                }
            }
        }
    }

    #[test]
    fn zero_measure_vertices_allowed() {
        // µ concentrated on half the vertices; split still covers everyone.
        let g = banded_path(120, 2);
        let start = tree_of(&g, 1);
        let mu: Vec<u64> = (0..120).map(|v| (v % 2) as u64).collect();
        let mu_g: u64 = mu.iter().sum();
        let trees = split_to_completion(start, &mu, mu_g, 2, &cfg());
        let covered: usize = {
            let mut seen = [false; 120];
            for tr in &trees {
                for &(v, _) in &tr.nodes {
                    seen[v as usize] = true;
                }
            }
            seen.iter().filter(|&&s| s).count()
        };
        assert_eq!(covered, 120);
    }

    #[test]
    fn singleton_finishes() {
        let trees = split_to_completion(STree::singleton(0), &[1], 1, 2, &cfg());
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].len(), 1);
    }
}
