//! Distributed Bellman–Ford: the classical exact SSSP taking Θ(n) rounds
//! in the worst case (each superstep relaxes one more hop).

use congest_sim::{CongestError, Network};
use twgraph::{dist_add, ArcId, Dist, MultiDigraph, INF};

#[derive(Clone)]
struct BfState {
    dist: Dist,
    fresh: bool,
}

/// Run until quiescence; returns `(dist, rounds_charged)`.
/// Each superstep a node whose distance improved sends, per outgoing arc
/// bundle to a neighbour, its current distance (1 word).
pub fn bellman_ford_distributed(
    net: &mut Network,
    inst: &MultiDigraph,
    src: u32,
) -> Result<(Vec<Dist>, u64), CongestError> {
    let n = inst.n();
    assert_eq!(net.n(), n);
    let start = net.metrics().rounds;
    // Per ordered neighbour pair, the cheapest arc weight (senders relax
    // locally before transmitting — standard).
    let mut best_out: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let mut outs: Vec<(u32, Dist)> = inst
            .out_arcs(v)
            .iter()
            .map(|&ai| {
                let a = inst.arc(ArcId(ai));
                (a.dst, a.weight)
            })
            .collect();
        outs.sort_unstable();
        outs.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 = b.1.min(a.1);
                true
            } else {
                false
            }
        });
        best_out[v as usize] = outs;
    }
    let mut states = vec![
        BfState {
            dist: INF,
            fresh: false,
        };
        n
    ];
    states[src as usize] = BfState {
        dist: 0,
        fresh: true,
    };
    let best_out_ref = &best_out;
    net.run_until_quiet(
        &mut states,
        |u, s: &BfState| {
            if s.fresh {
                best_out_ref[u as usize]
                    .iter()
                    .map(|&(v, w)| (v, dist_add(s.dist, w)))
                    .collect()
            } else {
                Vec::new()
            }
        },
        |_v, s, inbox| {
            s.fresh = false;
            for (_src, d) in inbox {
                if d < s.dist {
                    s.dist = d;
                    s.fresh = true;
                }
            }
        },
        (n as u64 + 2) * (n as u64 + 2),
    )?;
    Ok((
        states.into_iter().map(|s| s.dist).collect(),
        net.metrics().rounds - start,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::NetworkConfig;
    use twgraph::alg::dijkstra;
    use twgraph::gen::{banded_path, with_random_weights};

    #[test]
    fn matches_dijkstra() {
        let g = banded_path(60, 3);
        let inst = with_random_weights(&g, 10, 3);
        let mut net = Network::new(g, NetworkConfig::default());
        let (dist, rounds) = bellman_ford_distributed(&mut net, &inst, 5).unwrap();
        assert_eq!(dist, dijkstra(&inst, 5).dist);
        assert!(rounds > 0);
    }

    #[test]
    fn rounds_scale_linearly_on_paths() {
        // On an n-path with increasing weights toward the source, the
        // relaxation wave takes Θ(n) supersteps.
        let g = twgraph::gen::path(100);
        let inst = with_random_weights(&g, 5, 1);
        let mut net = Network::new(g, NetworkConfig::default());
        let (_, rounds) = bellman_ford_distributed(&mut net, &inst, 0).unwrap();
        assert!(rounds >= 99, "rounds = {rounds}");
    }

    #[test]
    fn directed_unreachable() {
        let inst = MultiDigraph::from_arcs(3, vec![twgraph::Arc::new(0, 1, 4)]);
        let g = twgraph::UGraph::from_edges(3, [(0, 1), (1, 2)]);
        let mut net = Network::new(g, NetworkConfig::default());
        let (dist, _) = bellman_ford_distributed(&mut net, &inst, 0).unwrap();
        assert_eq!(dist, vec![0, 4, INF]);
    }
}
