//! Directed, weighted, labeled multigraphs — the problem instances.
//!
//! The paper (§2.1, §5.1) works with multigraphs `G = (V, E, γ)` where `γ`
//! maps each edge to an ordered pair of endpoints. [`MultiDigraph`] stores
//! arcs explicitly in a table (so parallel arcs and the γ map are first
//! class), with CSR-style out/in adjacency over *arc ids*.
//!
//! Arcs carry a weight (`u64`, see [`crate::Dist`]) and a small integer
//! `label` used by the stateful-walk constraints (edge colors for
//! [`Ccol`](https://example.invalid) walks, 0/1 marks for count walks, …).
//! Arcs derived from an undirected input edge share a [`UEdgeId`].

use crate::ugraph::{UGraph, UGraphBuilder};
use crate::{ArcId, Dist, UEdgeId};

/// One directed arc of a [`MultiDigraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arc {
    /// Tail vertex (γ(e)\[0\]).
    pub src: u32,
    /// Head vertex (γ(e)\[1\]).
    pub dst: u32,
    /// Non-negative weight.
    pub weight: Dist,
    /// Small label consumed by walk constraints (color, 0/1 mark, …).
    pub label: u32,
    /// Undirected-edge identity shared by a twin arc, or [`UEdgeId::NONE`].
    pub uedge: UEdgeId,
}

impl Arc {
    /// A plain arc with label 0 and no undirected identity.
    pub fn new(src: u32, dst: u32, weight: Dist) -> Self {
        Arc {
            src,
            dst,
            weight,
            label: 0,
            uedge: UEdgeId::NONE,
        }
    }
}

/// A directed weighted labeled multigraph with explicit arc identities.
#[derive(Clone, Debug)]
pub struct MultiDigraph {
    n: u32,
    arcs: Vec<Arc>,
    out_off: Vec<u32>,
    out_arcs: Vec<u32>,
    in_off: Vec<u32>,
    in_arcs: Vec<u32>,
    /// Number of distinct undirected edges referenced by `uedge` fields.
    n_uedges: u32,
}

impl MultiDigraph {
    /// Build from an arc table.
    pub fn from_arcs(n: usize, arcs: Vec<Arc>) -> Self {
        let mut n_uedges = 0u32;
        for a in &arcs {
            assert!(
                (a.src as usize) < n && (a.dst as usize) < n,
                "arc ({},{}) out of range for n={n}",
                a.src,
                a.dst
            );
            if a.uedge.is_some() {
                n_uedges = n_uedges.max(a.uedge.0 + 1);
            }
        }
        let mut out_deg = vec![0u32; n];
        let mut in_deg = vec![0u32; n];
        for a in &arcs {
            out_deg[a.src as usize] += 1;
            in_deg[a.dst as usize] += 1;
        }
        let prefix = |deg: &[u32]| {
            let mut off = vec![0u32; n + 1];
            for v in 0..n {
                off[v + 1] = off[v] + deg[v];
            }
            off
        };
        let out_off = prefix(&out_deg);
        let in_off = prefix(&in_deg);
        let mut out_cursor = out_off.clone();
        let mut in_cursor = in_off.clone();
        let mut out_arcs = vec![0u32; arcs.len()];
        let mut in_arcs = vec![0u32; arcs.len()];
        for (i, a) in arcs.iter().enumerate() {
            out_arcs[out_cursor[a.src as usize] as usize] = i as u32;
            out_cursor[a.src as usize] += 1;
            in_arcs[in_cursor[a.dst as usize] as usize] = i as u32;
            in_cursor[a.dst as usize] += 1;
        }
        MultiDigraph {
            n: n as u32,
            arcs,
            out_off,
            out_arcs,
            in_off,
            in_arcs,
            n_uedges,
        }
    }

    /// Interpret an undirected weighted edge list: every edge `{u, v}` becomes
    /// a twin pair of arcs sharing a fresh [`UEdgeId`] and the given label.
    pub fn from_undirected(n: usize, edges: impl IntoIterator<Item = (u32, u32, Dist)>) -> Self {
        Self::from_undirected_labeled(n, edges.into_iter().map(|(u, v, w)| (u, v, w, 0)))
    }

    /// Like [`from_undirected`](Self::from_undirected) with per-edge labels.
    pub fn from_undirected_labeled(
        n: usize,
        edges: impl IntoIterator<Item = (u32, u32, Dist, u32)>,
    ) -> Self {
        let mut arcs = Vec::new();
        for (i, (u, v, w, label)) in edges.into_iter().enumerate() {
            let ue = UEdgeId(i as u32);
            arcs.push(Arc {
                src: u,
                dst: v,
                weight: w,
                label,
                uedge: ue,
            });
            arcs.push(Arc {
                src: v,
                dst: u,
                weight: w,
                label,
                uedge: ue,
            });
        }
        Self::from_arcs(n, arcs)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Number of arcs (directed count; an undirected edge contributes two).
    #[inline]
    pub fn n_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Number of distinct undirected edge identities.
    #[inline]
    pub fn n_uedges(&self) -> usize {
        self.n_uedges as usize
    }

    /// The arc table entry.
    #[inline]
    pub fn arc(&self, a: ArcId) -> &Arc {
        &self.arcs[a.idx()]
    }

    /// All arcs, in id order.
    #[inline]
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Mutable access to all arcs — used by algorithms that re-label edges
    /// (e.g. the girth algorithm's probabilistic 0/1 labels, or matching
    /// flips). The topology (src/dst) must not be altered.
    #[inline]
    pub fn arcs_mut(&mut self) -> &mut [Arc] {
        &mut self.arcs
    }

    /// Arc ids leaving `v` (the paper's `E_out(v)`).
    #[inline]
    pub fn out_arcs(&self, v: u32) -> &[u32] {
        let lo = self.out_off[v as usize] as usize;
        let hi = self.out_off[v as usize + 1] as usize;
        &self.out_arcs[lo..hi]
    }

    /// Arc ids entering `v`.
    #[inline]
    pub fn in_arcs(&self, v: u32) -> &[u32] {
        let lo = self.in_off[v as usize] as usize;
        let hi = self.in_off[v as usize + 1] as usize;
        &self.in_arcs[lo..hi]
    }

    /// Maximum multiplicity `p_max`: the largest number of parallel arcs
    /// between one ordered pair of endpoints (paper §5.2 uses this in the
    /// simulation overhead).
    pub fn max_multiplicity(&self) -> usize {
        let mut pairs: Vec<(u32, u32)> = self.arcs.iter().map(|a| (a.src, a.dst)).collect();
        pairs.sort_unstable();
        let mut best = 0usize;
        let mut run = 0usize;
        let mut prev = None;
        for p in pairs {
            if Some(p) == prev {
                run += 1;
            } else {
                run = 1;
                prev = Some(p);
            }
            best = best.max(run);
        }
        best
    }

    /// The communication network ⟦G⟧ (paper §2.1): drop orientation, weights,
    /// multiplicity and self-loops.
    pub fn comm_graph(&self) -> UGraph {
        let mut b = UGraphBuilder::new(self.n());
        for a in &self.arcs {
            b.add_edge(a.src, a.dst);
        }
        b.build()
    }

    /// The reverse multigraph (every arc flipped). Useful for computing
    /// "distance *to* a target" with forward algorithms.
    pub fn reversed(&self) -> MultiDigraph {
        let arcs = self
            .arcs
            .iter()
            .map(|a| Arc {
                src: a.dst,
                dst: a.src,
                ..*a
            })
            .collect();
        Self::from_arcs(self.n(), arcs)
    }

    /// The isomorphic instance with vertex `v` renamed to `perm[v]` (a
    /// permutation of `0..n`). Arc order, weights, labels and uedge ids are
    /// preserved, so the relabeled instance is the π-image in every respect.
    pub fn relabeled(&self, perm: &[u32]) -> MultiDigraph {
        assert_eq!(perm.len(), self.n());
        let arcs = self
            .arcs
            .iter()
            .map(|a| Arc {
                src: perm[a.src as usize],
                dst: perm[a.dst as usize],
                ..*a
            })
            .collect();
        Self::from_arcs(self.n(), arcs)
    }

    /// The subgraph induced by `keep`, with old-vertex mapping
    /// (`old_of[new] = old`). Arc labels/weights/uedge ids are preserved.
    pub fn induced(&self, keep: &[bool]) -> (MultiDigraph, Vec<u32>) {
        assert_eq!(keep.len(), self.n());
        let mut new_of = vec![u32::MAX; self.n()];
        let mut old_of = Vec::new();
        for v in 0..self.n() {
            if keep[v] {
                new_of[v] = old_of.len() as u32;
                old_of.push(v as u32);
            }
        }
        let arcs = self
            .arcs
            .iter()
            .filter(|a| keep[a.src as usize] && keep[a.dst as usize])
            .map(|a| Arc {
                src: new_of[a.src as usize],
                dst: new_of[a.dst as usize],
                ..*a
            })
            .collect();
        (MultiDigraph::from_arcs(old_of.len(), arcs), old_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> MultiDigraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, plus a parallel arc 0 -> 1.
        MultiDigraph::from_arcs(
            4,
            vec![
                Arc::new(0, 1, 1),
                Arc::new(0, 1, 5),
                Arc::new(1, 3, 2),
                Arc::new(0, 2, 2),
                Arc::new(2, 3, 2),
            ],
        )
    }

    #[test]
    fn adjacency() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.n_arcs(), 5);
        assert_eq!(g.out_arcs(0).len(), 3);
        assert_eq!(g.in_arcs(3).len(), 2);
        assert_eq!(g.max_multiplicity(), 2);
    }

    #[test]
    fn comm_graph_merges_and_undirects() {
        let g = diamond();
        let c = g.comm_graph();
        assert_eq!(c.n(), 4);
        assert_eq!(c.m(), 4); // {0,1},{1,3},{0,2},{2,3}
        assert!(c.has_edge(1, 0)); // orientation dropped
    }

    #[test]
    fn from_undirected_creates_twins() {
        let g = MultiDigraph::from_undirected(3, [(0, 1, 7), (1, 2, 9)]);
        assert_eq!(g.n_arcs(), 4);
        assert_eq!(g.n_uedges(), 2);
        // Twin arcs share the uedge id and weight.
        let a01: Vec<_> = g.arcs().iter().filter(|a| a.uedge == UEdgeId(0)).collect();
        assert_eq!(a01.len(), 2);
        assert_eq!(a01[0].weight, 7);
        assert_eq!(a01[0].uedge, a01[1].uedge);
    }

    #[test]
    fn reversed_flips() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.out_arcs(3).len(), 2);
        assert_eq!(r.in_arcs(0).len(), 3);
    }

    #[test]
    fn induced_keeps_metadata() {
        let g =
            MultiDigraph::from_undirected_labeled(4, [(0, 1, 3, 9), (1, 2, 4, 8), (2, 3, 5, 7)]);
        let (h, old_of) = g.induced(&[true, true, true, false]);
        assert_eq!(h.n(), 3);
        assert_eq!(h.n_arcs(), 4);
        assert_eq!(old_of, vec![0, 1, 2]);
        assert!(h.arcs().iter().any(|a| a.label == 9 && a.weight == 3));
    }

    #[test]
    fn self_loop_excluded_from_comm_graph() {
        let g = MultiDigraph::from_arcs(2, vec![Arc::new(0, 0, 1), Arc::new(0, 1, 1)]);
        assert_eq!(g.comm_graph().m(), 1);
    }
}
