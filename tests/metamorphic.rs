//! Metamorphic invariants of the scenario harness.
//!
//! Three transformation families, each with a provable relation between
//! the original and transformed runs:
//!
//! 1. **Uniform weight scaling** — multiplying every edge weight by λ
//!    multiplies every finite SSSP distance by λ, preserves unreachability,
//!    and (because message *counts* and scheduling depend only on the
//!    instance's structure, which scaling preserves, including distance
//!    ties) leaves the engine's charged metrics **bit-for-bit identical**.
//! 2. **Random vertex relabeling** — all outputs are π-equivariant:
//!    distances map through π, decode tables commute with π, girth and
//!    matching size are isomorphism-invariant. Charged *metrics* are
//!    deliberately **not** asserted here: the protocols schedule per-node
//!    gathers in vertex-id order, so supersteps legitimately differ
//!    between isomorphic executions (verified and documented by
//!    `relabeling_changes_schedule_but_not_outputs`).
//! 3. **Execution partitioning** — `NetworkConfig::parallel_threshold`
//!    ∈ {0, default, ∞} switches the engine between the rayon-pool
//!    edge-partitioned send/recv path and the sequential path (with the
//!    offline rayon stand-in both run on one thread; with real rayon the
//!    0-threshold path fans out to N workers). Charged metrics must be
//!    identical on every path — the cost model may not depend on how the
//!    simulator happens to execute, i.e. it is thread-count invariant
//!    (1, 2, N) by construction of the partitioned path.
//!
//! The portfolio pipelines get the same treatment: counting cells are
//! weight-model invariant (the counts live on the communication graph),
//! FO verdicts are relabeling-invariant (closed sentences are
//! isomorphism-invariant), and the walk/hop/MVC probes are
//! partitioning-invariant like every other charged primitive.

use congest_sim::{Metrics, Network, NetworkConfig};
use lowtw::{baselines, bmatch, distlabel, girth, treedec, twgraph};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use scenarios::{corpus, CountingPipeline, Pipeline, WeightModel};
use twgraph::{MultiDigraph, UGraph, INF};

/// Full distributed pipeline (decompose → label → query from 0) on one
/// connected graph; returns the distances and the net's final metrics.
fn sssp_pipeline(
    g: &UGraph,
    inst: &MultiDigraph,
    t0: u64,
    net_cfg: NetworkConfig,
) -> (Vec<u64>, Metrics) {
    let cfg = treedec::SepConfig::practical(g.n());
    let mut rng = SmallRng::seed_from_u64(7);
    let mut net = Network::new(g.clone(), net_cfg);
    let out = treedec::decompose_distributed(&mut net, t0, &cfg, &mut rng).unwrap();
    let (labels, _) =
        distlabel::build_labels_distributed(&mut net, inst, &out.td, &out.info).unwrap();
    let (d, _) = distlabel::sssp_distributed(&mut net, &labels, 0).unwrap();
    (d, *net.metrics())
}

/// Connected corpus scenarios the metamorphic runs iterate over (the
/// disconnected mix is exercised by `scenario_matrix`; here each relation
/// needs one decomposition per graph).
fn connected_corpus() -> Vec<(&'static str, UGraph, MultiDigraph, u64)> {
    corpus()
        .into_iter()
        .filter(|sc| {
            matches!(
                sc.family.tag(),
                "series_parallel" | "cactus" | "halin" | "ring_of_cliques"
            )
        })
        .map(|sc| (sc.name, sc.graph(), sc.instance(), sc.t0))
        .collect()
}

#[test]
fn weight_scaling_scales_distances_and_preserves_metrics() {
    for (name, g, inst, t0) in connected_corpus() {
        let (d1, m1) = sssp_pipeline(&g, &inst, t0, NetworkConfig::default());
        for lambda in [7u64, 13] {
            let mut scaled = inst.clone();
            for a in scaled.arcs_mut() {
                a.weight *= lambda;
            }
            let (d2, m2) = sssp_pipeline(&g, &scaled, t0, NetworkConfig::default());
            for v in 0..g.n() {
                if d1[v] >= INF {
                    assert!(d2[v] >= INF, "{name}: v={v} became reachable under scaling");
                } else {
                    assert_eq!(d2[v], lambda * d1[v], "{name}: λ={lambda}, v={v}");
                }
            }
            assert_eq!(
                m1, m2,
                "{name}: uniform ×{lambda} weight scaling changed charged metrics"
            );
        }
    }
}

#[test]
fn relabeling_changes_schedule_but_not_outputs() {
    for (name, g, inst, t0) in connected_corpus() {
        let cfg = treedec::SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(11);
        let out = treedec::decompose_centralized(&g, t0, &cfg, &mut rng).unwrap();

        let mut perm: Vec<u32> = (0..g.n() as u32).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(0xA11CE));
        let g2 = g.relabeled(&perm);
        let inst2 = inst.relabeled(&perm);
        let td2 = out.td.relabeled(&perm);
        let info2: Vec<_> = out.info.iter().map(|ni| ni.relabeled(&perm)).collect();
        td2.verify(&g2)
            .unwrap_or_else(|e| panic!("{name}: relabeled decomposition invalid: {e}"));
        assert_eq!(
            td2.width(),
            out.td.width(),
            "{name}: relabeling changed the width"
        );

        // Labels built on both sides: the decode table must commute with π.
        let l1 = distlabel::build_labels_centralized(&inst, &out.td, &out.info);
        let l2 = distlabel::build_labels_centralized(&inst2, &td2, &info2);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(
                    distlabel::decode(&l1[u], &l1[v]),
                    distlabel::decode(&l2[perm[u] as usize], &l2[perm[v] as usize]),
                    "{name}: decode({u}, {v}) not π-equivariant"
                );
            }
        }

        // Girth is isomorphism-invariant — oracle and pipeline agree
        // across the relabeling.
        let want = baselines::girth_exact_centralized(&inst);
        assert_eq!(
            baselines::girth_exact_centralized(&inst2),
            want,
            "{name}: oracle girth not relabeling-invariant"
        );
        let gcfg = girth::GirthConfig {
            trials_per_c: 2 + g.n().max(2).ilog2() as usize,
            seed: 23,
            measure_distributed: false,
        };
        let run2 = girth::girth_undirected(&inst2, &td2, &info2, &gcfg).unwrap();
        assert_eq!(
            run2.girth, want,
            "{name}: pipeline girth diverged after relabeling"
        );
    }
}

#[test]
fn matching_size_is_relabeling_invariant() {
    // Bipartite workload: relabel within the banded bipartite family.
    let (g, side) = twgraph::gen::bipartite_banded(18, 18, 2, 0.5, 6);
    let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
    let cfg = treedec::SepConfig::practical(g.n());
    let mut rng = SmallRng::seed_from_u64(3);
    let out = treedec::decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
    let want = bmatch::max_matching(&inst, &out.td, &out.info, bmatch::MatchMode::Centralized)
        .unwrap()
        .size();
    assert_eq!(want, baselines::matching_oracle(&g, &side));

    let mut perm: Vec<u32> = (0..g.n() as u32).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(0xBEE));
    let g2 = g.relabeled(&perm);
    let mut side2 = vec![false; side.len()];
    for (v, &s) in side.iter().enumerate() {
        side2[perm[v] as usize] = s;
    }
    let inst2 = twgraph::gen::BipartiteInstance::new(g2.clone(), side2.clone());
    let td2 = out.td.relabeled(&perm);
    let info2: Vec<_> = out.info.iter().map(|ni| ni.relabeled(&perm)).collect();
    let got = bmatch::max_matching(&inst2, &td2, &info2, bmatch::MatchMode::Centralized)
        .unwrap()
        .size();
    assert_eq!(got, want, "matching size not relabeling-invariant");
    assert_eq!(baselines::matching_oracle(&g2, &side2), want);
}

/// Subgraph counts are a property of the *communication graph* alone: the
/// weighted instance never enters the counting pipeline, so swapping the
/// corpus weight model (holding family + seed fixed, which pins the graph)
/// must reproduce the entire cell bit-for-bit — counts, checksum, and
/// charged metrics.
#[test]
fn counting_cell_is_weight_model_invariant() {
    let p = CountingPipeline;
    for sc in corpus() {
        if !matches!(
            sc.family.tag(),
            "series_parallel" | "cactus" | "ring_of_cliques" | "multi_component"
        ) {
            continue;
        }
        let rep1 = p.run(&sc).unwrap();
        for weights in [
            WeightModel::Unit,
            WeightModel::HeavyTailed {
                wmax: 1 << 20,
                alpha: 1.5,
            },
        ] {
            let sc2 = scenarios::Scenario {
                weights,
                ..sc.clone()
            };
            let rep2 = p.run(&sc2).unwrap();
            assert_eq!(
                rep2.output, rep1.output,
                "{}: counting checksum depends on the weight model",
                sc.name
            );
            assert_eq!(rep2.detail, rep1.detail, "{}", sc.name);
            assert_eq!(
                rep2.metrics, rep1.metrics,
                "{}: counting charged metrics depend on the weight model",
                sc.name
            );
        }
    }
}

/// Closed FO sentences are isomorphism-invariant: relabeling the graph by
/// a random permutation must leave every seeded sentence's verdict — and
/// the multiset of pairwise distances behind the `dist` atoms — unchanged.
#[test]
fn fo_verdicts_are_relabeling_invariant() {
    for (name, g, _inst, _t0) in connected_corpus() {
        let sentences = twgraph::fo::seeded_sentences(6, 2, 42);
        let mut perm: Vec<u32> = (0..g.n() as u32).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(0xF0));
        let g2 = g.relabeled(&perm);
        for (i, f) in sentences.iter().enumerate() {
            assert_eq!(
                baselines::fo_oracle(&g, f),
                baselines::fo_oracle(&g2, f),
                "{name}: sentence {i} «{f}» verdict not relabeling-invariant"
            );
        }
        // The atom substrate commutes with π too: d(u, v) = d(π u, π v).
        for u in 0..g.n() as u32 {
            let d1 = twgraph::alg::bfs_dist(&g, u);
            let d2 = twgraph::alg::bfs_dist(&g2, perm[u as usize]);
            for v in 0..g.n() {
                assert_eq!(
                    d1[v], d2[perm[v] as usize],
                    "{name}: bfs_dist({u}, {v}) not π-equivariant"
                );
            }
        }
    }
}

/// The portfolio probes (walk spectrum, bounded hop flood, batched MVC)
/// ride the same engine invariant as the SSSP pipeline: charged metrics
/// and outputs may not depend on how the simulator partitions execution.
#[test]
fn portfolio_probes_invariant_across_partitioning() {
    for (name, g, _inst, t0) in connected_corpus() {
        let run = |net_cfg: NetworkConfig| {
            let cfg = treedec::SepConfig::practical(g.n());
            let mut rng = SmallRng::seed_from_u64(7);
            let mut net = Network::new(g.clone(), net_cfg);
            let out = treedec::decompose_distributed(&mut net, t0, &cfg, &mut rng).unwrap();
            let active: Vec<u32> = (0..g.n() as u32).collect();
            let spectrum =
                lowtw::subgraph_ops::probe::closed_walk_spectrum(&mut net, &active, 5).unwrap();
            let hops =
                lowtw::subgraph_ops::probe::bounded_hop_distances(&mut net, &active, 2).unwrap();
            let cuts = lowtw::subgraph_ops::mvc::batch_min_vertex_cut(
                &mut net,
                &[lowtw::subgraph_ops::mvc::CutInstance {
                    members: None,
                    sources: vec![0],
                    sinks: vec![g.n() as u32 - 1],
                }],
                out.td.width() + 1,
            )
            .unwrap();
            (spectrum, hops, cuts, *net.metrics())
        };
        let (s_ref, h_ref, c_ref, m_ref) = run(NetworkConfig::default());
        for threshold in [0usize, usize::MAX] {
            let cfg = NetworkConfig {
                parallel_threshold: threshold,
                ..NetworkConfig::default()
            };
            let (s, h, c, m) = run(cfg);
            assert_eq!(s, s_ref, "{name}: walk spectrum depends on partitioning");
            assert_eq!(h, h_ref, "{name}: hop tables depend on partitioning");
            assert_eq!(c, c_ref, "{name}: MVC results depend on partitioning");
            assert_eq!(
                m, m_ref,
                "{name}: portfolio charged metrics depend on the execution \
                 partitioning (parallel_threshold = {threshold})"
            );
        }
    }
}

#[test]
fn charged_metrics_invariant_across_partitioning() {
    for (name, g, inst, t0) in connected_corpus() {
        let (d_ref, m_ref) = sssp_pipeline(&g, &inst, t0, NetworkConfig::default());
        for threshold in [0usize, usize::MAX] {
            let cfg = NetworkConfig {
                parallel_threshold: threshold,
                ..NetworkConfig::default()
            };
            let (d, m) = sssp_pipeline(&g, &inst, t0, cfg);
            assert_eq!(
                d, d_ref,
                "{name}: outputs depend on partitioning ({threshold})"
            );
            assert_eq!(
                m, m_ref,
                "{name}: charged metrics depend on the execution partitioning \
                 (parallel_threshold = {threshold}) — the cost model leaked \
                 thread-count dependence"
            );
        }
    }
}
