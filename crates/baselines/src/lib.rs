//! # baselines — the algorithms the paper's results are measured against
//!
//! * [`hopcroft_karp`] — centralized maximum bipartite matching (the
//!   correctness oracle for Theorem 4's algorithm).
//! * [`bellman_ford_distributed`] — exact distributed SSSP by iterated
//!   relaxation: Θ(n) rounds worst case, the "before" picture for the
//!   fully polynomial SSSP of §1.2 (experiment E5).
//! * [`apsp_pipelined_distributed`] — unweighted all-pairs BFS with
//!   per-edge pipelining: Θ(n + D) rounds; the natural diameter (and
//!   unweighted girth) routine that the girth/diameter separation of §1.2
//!   is measured against (experiment E8).
//! * [`matching_distributed_baseline`] — augmenting alternating-BFS
//!   matching in the spirit of the Õ(s_max)-round algorithms \[AKO18\]
//!   (experiment E7's comparison).
//! * [`girth_exact_centralized`] / [`girth_directed_centralized`] — exact
//!   weighted girth oracles.
//! * [`oracles`] — the uniform centralized oracle surface the scenario
//!   matrix (`crates/scenarios`) differentially checks every pipeline
//!   against.

pub mod apsp;
pub mod bford;
pub mod girth_oracle;
pub mod matching;
pub mod oracles;

pub use apsp::apsp_pipelined_distributed;
pub use bford::bellman_ford_distributed;
pub use girth_oracle::{girth_directed_centralized, girth_exact_centralized};
pub use matching::{hopcroft_karp, matching_distributed_baseline, matching_size};
pub use oracles::{
    constrained_sssp_oracle, cycle_counts_oracle, fo_oracle, matching_oracle, maxflow_oracle,
    sssp_oracle, CycleCounts,
};
