//! Edge-update batches over problem instances.
//!
//! Dynamic-graph maintenance (incremental relabeling in `distlabel`,
//! epoch-versioned serving in `labelserve`) consumes graph changes as
//! [`EdgeBatch`]es: a set of undirected edge deletions plus weighted edge
//! insertions applied atomically to a [`MultiDigraph`]. The batch works on
//! the *undirected* view — a deletion removes every arc (in both
//! directions, parallel arcs included) between the pair, an insertion adds
//! a twin arc pair sharing a fresh [`UEdgeId`] — so the communication
//! graph and the instance stay each other's projections.

use crate::{Arc, Dist, MultiDigraph, UEdgeId};
use std::collections::BTreeSet;

/// A batch of undirected edge updates, applied deletions-first.
///
/// Self-loops are ignored on both sides (the communication graph is
/// simple). Deleting a pair with no present edge is a no-op; inserting an
/// already-present pair adds a parallel edge (instances are multigraphs).
#[derive(Clone, Debug, Default)]
pub struct EdgeBatch {
    /// Undirected insertions `(u, v, weight)` — one twin arc pair each.
    pub inserts: Vec<(u32, u32, Dist)>,
    /// Undirected deletions `(u, v)` — all arcs between the pair go.
    pub deletes: Vec<(u32, u32)>,
}

impl EdgeBatch {
    /// The empty batch.
    pub fn new() -> Self {
        EdgeBatch::default()
    }

    /// Queue an undirected insertion of `{u, v}` with the given weight.
    pub fn insert(mut self, u: u32, v: u32, w: Dist) -> Self {
        self.inserts.push((u, v, w));
        self
    }

    /// Queue an undirected deletion of `{u, v}`.
    pub fn delete(mut self, u: u32, v: u32) -> Self {
        self.deletes.push((u, v));
        self
    }

    /// True when the batch queues no updates at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Apply to an instance, returning the updated instance and the sorted
    /// set of *effectively touched* endpoints — vertices incident to an arc
    /// that was actually removed or inserted. No-op deletions (absent
    /// pairs) and self-loops touch nothing, so an empty touched set means
    /// the instance is unchanged.
    pub fn apply(&self, inst: &MultiDigraph) -> (MultiDigraph, Vec<u32>) {
        let n = inst.n();
        let norm = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };
        let del: BTreeSet<(u32, u32)> = self
            .deletes
            .iter()
            .filter(|&&(u, v)| u != v && (u as usize) < n && (v as usize) < n)
            .map(|&(u, v)| norm(u, v))
            .collect();
        let mut touched = BTreeSet::new();
        let mut arcs: Vec<Arc> = Vec::with_capacity(inst.n_arcs() + 2 * self.inserts.len());
        let mut next_uedge = 0u32;
        for a in inst.arcs() {
            if a.uedge.is_some() {
                next_uedge = next_uedge.max(a.uedge.0 + 1);
            }
            if del.contains(&norm(a.src, a.dst)) {
                touched.insert(a.src);
                touched.insert(a.dst);
            } else {
                arcs.push(*a);
            }
        }
        for &(u, v, w) in &self.inserts {
            if u == v || u as usize >= n || v as usize >= n {
                continue;
            }
            let ue = UEdgeId(next_uedge);
            next_uedge += 1;
            arcs.push(Arc {
                src: u,
                dst: v,
                weight: w,
                label: 0,
                uedge: ue,
            });
            arcs.push(Arc {
                src: v,
                dst: u,
                weight: w,
                label: 0,
                uedge: ue,
            });
            touched.insert(u);
            touched.insert(v);
        }
        (
            MultiDigraph::from_arcs(n, arcs),
            touched.into_iter().collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn insert_and_delete_round_trip() {
        let g = gen::grid(3, 3);
        let inst = gen::with_random_weights(&g, 9, 1);
        let m0 = inst.n_arcs();
        let (with_edge, touched) = EdgeBatch::new().insert(0, 8, 5).apply(&inst);
        assert_eq!(touched, vec![0, 8]);
        assert_eq!(with_edge.n_arcs(), m0 + 2);
        assert!(with_edge.comm_graph().has_edge(0, 8));
        let (back, touched) = EdgeBatch::new().delete(0, 8).apply(&with_edge);
        assert_eq!(touched, vec![0, 8]);
        assert_eq!(back.n_arcs(), m0);
        assert!(!back.comm_graph().has_edge(0, 8));
    }

    #[test]
    fn delete_removes_parallel_arcs_both_directions() {
        let arcs = vec![
            Arc::new(0, 1, 2),
            Arc::new(0, 1, 7),
            Arc::new(1, 0, 3),
            Arc::new(1, 2, 1),
        ];
        let inst = MultiDigraph::from_arcs(3, arcs);
        let (out, touched) = EdgeBatch::new().delete(1, 0).apply(&inst);
        assert_eq!(out.n_arcs(), 1);
        assert_eq!(touched, vec![0, 1]);
    }

    #[test]
    fn noop_deletes_and_self_loops_touch_nothing() {
        let g = gen::cycle(5);
        let inst = gen::with_unit_weights(&g);
        let batch = EdgeBatch::new().delete(0, 2).delete(3, 3).insert(4, 4, 1);
        let (out, touched) = batch.apply(&inst);
        assert!(touched.is_empty());
        assert_eq!(out.n_arcs(), inst.n_arcs());
    }

    #[test]
    fn inserts_get_fresh_shared_uedges() {
        let inst = MultiDigraph::from_undirected(4, [(0, 1, 1)]);
        let (out, _) = EdgeBatch::new().insert(2, 3, 4).apply(&inst);
        let new: Vec<&Arc> = out.arcs().iter().filter(|a| a.weight == 4).collect();
        assert_eq!(new.len(), 2);
        assert_eq!(new[0].uedge, new[1].uedge);
        assert!(new[0].uedge.is_some());
        assert_ne!(new[0].uedge, out.arcs()[0].uedge);
    }
}
