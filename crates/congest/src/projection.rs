//! Virtual-edge → physical-edge projection for simulated product graphs.

use crate::error::CongestError;
use twgraph::UGraph;

/// Sentinel directed-slot index for free (node-local) virtual edges, used
/// in the tables returned by [`EdgeProjection::slot_tables`].
pub const NO_SLOT: u32 = u32::MAX;

/// Maps each undirected edge of a *virtual* communication graph onto the
/// physical edge carrying it (paper §5.2: node `u` simulates all of
/// `U_Q(u)`, and a virtual edge between copies of `u` and `v` rides the
/// physical edge `{u, v}`; edges between two copies of the *same* node are
/// node-local, i.e. free).
#[derive(Clone, Debug)]
pub struct EdgeProjection {
    /// For each virtual edge id: `(physical_edge_id, flipped)`, where
    /// `flipped` records whether the virtual edge's (lo, hi) endpoint order
    /// maps to the physical edge's (hi, lo). `LOCAL` marks free edges.
    map: Vec<(u32, bool)>,
    /// Number of physical directed-edge slots (2 × physical edge count).
    n_physical_edges: usize,
}

impl EdgeProjection {
    /// Sentinel physical id for node-local (free) virtual edges.
    pub const LOCAL: u32 = u32::MAX;

    /// Build a projection from the virtual graph onto the physical one using
    /// `host(virtual_vertex) -> physical_vertex`. Virtual edges whose
    /// endpoints share a host become free; all others must map onto a
    /// physical edge ([`CongestError::UnsimulatableEdge`] otherwise — such a
    /// virtual link has no physical channel to ride).
    pub fn from_hosts(
        virtual_g: &UGraph,
        physical_g: &UGraph,
        host: impl Fn(u32) -> u32,
    ) -> Result<Self, CongestError> {
        // Index physical edges: sorted (lo, hi) list parallel to ids.
        let phys_edges: Vec<(u32, u32)> = physical_g.edges().collect();
        let find = |a: u32, b: u32| -> Result<u32, CongestError> {
            let key = if a < b { (a, b) } else { (b, a) };
            phys_edges
                .binary_search(&key)
                .map(|i| i as u32)
                .map_err(|_| CongestError::UnsimulatableEdge { u: key.0, v: key.1 })
        };
        let mut map = Vec::with_capacity(virtual_g.m());
        for (u, v) in virtual_g.edges() {
            let hu = host(u);
            let hv = host(v);
            if hu == hv {
                map.push((Self::LOCAL, false));
            } else {
                let pid = find(hu, hv)?;
                let (plo, _phi) = phys_edges[pid as usize];
                map.push((pid, plo != hu)); // flipped iff virtual-lo maps to physical-hi
            }
        }
        Ok(EdgeProjection {
            map,
            n_physical_edges: phys_edges.len(),
        })
    }

    /// Identity projection (virtual == physical).
    pub fn identity(g: &UGraph) -> Self {
        EdgeProjection {
            map: (0..g.m() as u32).map(|e| (e, false)).collect(),
            n_physical_edges: g.m(),
        }
    }

    /// Number of physical (undirected) edges.
    #[inline]
    pub fn n_physical_edges(&self) -> usize {
        self.n_physical_edges
    }

    /// Resolve a virtual edge id and direction (`forward` = from the lower
    /// endpoint) into a physical directed-slot index, or `None` if free.
    #[inline]
    pub fn slot(&self, virtual_edge: u32, forward: bool) -> Option<usize> {
        let (pid, flip) = self.map[virtual_edge as usize];
        if pid == Self::LOCAL {
            None
        } else {
            let dir = forward ^ flip;
            Some(pid as usize * 2 + usize::from(dir))
        }
    }

    /// Resolve every virtual edge's two directed slots up front, for the
    /// engine's arena hot path: returns `(forward, reverse)` tables indexed
    /// by virtual edge id, with [`NO_SLOT`] marking free local edges. The
    /// flip logic is paid once here instead of per message.
    pub fn slot_tables(&self) -> (Vec<u32>, Vec<u32>) {
        let resolve = |forward: bool| -> Vec<u32> {
            (0..self.map.len() as u32)
                .map(|e| self.slot(e, forward).map_or(NO_SLOT, |s| s as u32))
                .collect()
        };
        (resolve(true), resolve(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::UGraph;

    #[test]
    fn identity_projection() {
        let g = UGraph::from_edges(3, [(0, 1), (1, 2)]);
        let p = EdgeProjection::identity(&g);
        assert_eq!(p.n_physical_edges(), 2);
        assert_eq!(p.slot(0, true), Some(1));
        assert_eq!(p.slot(0, false), Some(0));
    }

    #[test]
    fn product_projection() {
        // Physical: 0 - 1. Virtual: two copies per node; host(v) = v / 2.
        let phys = UGraph::from_edges(2, [(0, 1)]);
        let virt = UGraph::from_edges(
            4,
            [
                (0, 1), // copies of node 0: local
                (2, 3), // copies of node 1: local
                (0, 2), // cross edges ride the physical edge
                (1, 3),
                (0, 3),
            ],
        );
        let p = EdgeProjection::from_hosts(&virt, &phys, |v| v / 2).unwrap();
        // Virtual edges sorted: (0,1)=local, (0,2), (0,3), (1,3), (2,3)=local.
        assert_eq!(p.slot(0, true), None);
        assert!(p.slot(1, true).is_some());
        assert!(p.slot(2, true).is_some());
        assert!(p.slot(3, true).is_some());
        assert_eq!(p.slot(4, true), None);
        // All cross edges share the one physical edge: same slot pair.
        let s1 = p.slot(1, true).unwrap();
        let s2 = p.slot(2, true).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn slot_tables_match_pointwise_resolution() {
        let phys = UGraph::from_edges(2, [(0, 1)]);
        let virt = UGraph::from_edges(4, [(0, 1), (2, 3), (0, 2), (1, 3), (0, 3)]);
        let p = EdgeProjection::from_hosts(&virt, &phys, |v| v / 2).unwrap();
        let (fwd, rev) = p.slot_tables();
        for e in 0..5u32 {
            assert_eq!(
                p.slot(e, true).map_or(NO_SLOT, |s| s as u32),
                fwd[e as usize]
            );
            assert_eq!(
                p.slot(e, false).map_or(NO_SLOT, |s| s as u32),
                rev[e as usize]
            );
        }
    }

    #[test]
    fn rejects_unsimulatable_edges() {
        let phys = UGraph::from_edges(3, [(0, 1)]);
        let virt = UGraph::from_edges(3, [(0, 2)]);
        let err = EdgeProjection::from_hosts(&virt, &phys, |v| v).unwrap_err();
        assert_eq!(err, CongestError::UnsimulatableEdge { u: 0, v: 2 });
    }
}
