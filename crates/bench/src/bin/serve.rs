//! The `serve` bench: build-once / query-many on a large partial k-tree —
//! centralized decomposition + label construction, compaction into the
//! sharded `labelserve` store in **both physical layouts** (flat SoA and
//! packed delta-coded bit-packed blocks), then a seeded skewed workload is
//! replayed over each (single, one rayon batch, batch with the cache off)
//! with throughput, bytes/node, and the packed-vs-flat ratios reported.
//! Both layouts also round-trip through the `LWLSTOR1` shard file
//! (`write_to` → `open_mmap`) with a sampled differential, so the bench
//! doubles as an end-to-end persistence check. Writes `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p lowtw-bench --bin serve                  # n = 1_000_000
//! cargo run --release -p lowtw-bench --bin serve -- 20000 2       # smaller / wider
//! cargo run --release -p lowtw-bench --bin serve -- 1000000 1 0.5 1 --smoke
//! ```
//!
//! Positional arguments: `n` (default 1_000_000), `k` (default 1), `keep`
//! (default 0.5), `seed` (default 1) — the same family and defaults as the
//! `engine` bench, so the build-side numbers line up. `--smoke` replays a
//! 20x smaller workload and skips the JSON write — the CI-sized variant
//! that still builds, packs, persists, and queries at full n.

use labelserve::{
    seeded_queries, LabelStore, QueryEngine, ServeConfig, StoreBuilder, StoreLayout, WorkloadSpec,
};
use lowtw::{distlabel, treedec, twgraph};
use lowtw_bench::{fmt, rate_per_sec};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// One layout's replay numbers: the same workload three ways.
struct Replay {
    single: Duration,
    single_qps: u64,
    single_hit_rate: f64,
    batch: Duration,
    batch_qps: u64,
    nocache: Duration,
    nocache_qps: u64,
    answers: Vec<u64>,
}

fn replay(tag: &str, store: LabelStore, cfg: ServeConfig, queries: &[(u32, u32)]) -> Replay {
    let engine = QueryEngine::new(store, cfg);
    let t = Instant::now();
    for &(s, tgt) in queries {
        engine.distance(s, tgt).expect("single query failed");
    }
    let single = t.elapsed();
    let single_stats = engine.stats();
    let single_qps = rate_per_sec(queries.len() as u64, single);
    eprintln!(
        "{tag}/single:  {} q in {:.1?} = {} q/s (hit rate {:.1}%)",
        fmt(queries.len() as u64),
        single,
        fmt(single_qps),
        single_stats.hit_rate() * 100.0
    );

    engine.reset();
    let t = Instant::now();
    let answers = engine.batch(queries).expect("batch failed");
    let batch = t.elapsed();
    let batch_qps = rate_per_sec(queries.len() as u64, batch);
    eprintln!(
        "{tag}/batched: {} q in {:.1?} = {} q/s (hit rate {:.1}%)",
        fmt(queries.len() as u64),
        batch,
        fmt(batch_qps),
        engine.stats().hit_rate() * 100.0
    );

    // Cache off: the same store rewrapped without hot-pair reuse — the
    // honest decode-throughput number the layouts are compared on.
    let nocache_engine = QueryEngine::new(engine.into_store(), cfg.without_cache());
    let t = Instant::now();
    let raw = nocache_engine
        .batch(queries)
        .expect("uncached batch failed");
    let nocache = t.elapsed();
    let nocache_qps = rate_per_sec(queries.len() as u64, nocache);
    assert_eq!(answers, raw, "{tag}: cache on/off answers diverged");
    eprintln!(
        "{tag}/nocache: {} q in {:.1?} = {} q/s",
        fmt(queries.len() as u64),
        nocache,
        fmt(nocache_qps)
    );

    Replay {
        single,
        single_qps,
        single_hit_rate: single_stats.hit_rate(),
        batch,
        batch_qps,
        nocache,
        nocache_qps,
        answers,
    }
}

/// write_to → open_mmap → sampled differential against the live store;
/// returns (file bytes, write wall, open wall).
fn file_round_trip(
    tag: &str,
    store: &LabelStore,
    queries: &[(u32, u32)],
) -> (u64, Duration, Duration) {
    let path = std::env::temp_dir().join(format!(
        "lowtw_bench_serve_{}_{tag}.lbl",
        std::process::id()
    ));
    let t = Instant::now();
    store.write_to(&path).expect("store write failed");
    let wall_write = t.elapsed();
    let file_bytes = std::fs::metadata(&path).expect("stat failed").len();
    let t = Instant::now();
    let opened = LabelStore::open_mmap(&path).expect("store open failed");
    let wall_open = t.elapsed();
    assert_eq!(opened.layout(), store.layout());
    assert_eq!(opened.entries(), store.entries());
    let step = (queries.len() / 10_000).max(1);
    for q in queries.iter().step_by(step) {
        assert_eq!(
            opened.distance(q.0, q.1).unwrap(),
            store.distance(q.0, q.1).unwrap(),
            "{tag}: reopened store diverged at ({}, {})",
            q.0,
            q.1
        );
    }
    std::fs::remove_file(&path).ok();
    eprintln!(
        "{tag}/file:    {} bytes, write {:.1?}, mmap open {:.1?}",
        fmt(file_bytes),
        wall_write,
        wall_open
    );
    (file_bytes, wall_write, wall_open)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let arg = |i: usize, default: f64| -> f64 {
        args.get(i)
            .map(|s| s.parse().expect("numeric argument"))
            .unwrap_or(default)
    };
    let n = arg(0, 1_000_000.0) as usize;
    let k = arg(1, 1.0) as usize;
    let keep = arg(2, 0.5);
    let seed = arg(3, 1.0) as u64;

    eprintln!("generating partial {k}-tree, n = {n}, keep = {keep}, seed = {seed} ...");
    let g = twgraph::gen::partial_ktree(n, k, keep, seed);
    let inst = twgraph::gen::with_random_weights(&g, 30, seed);
    let m = g.m();

    let cfg = lowtw::SepConfig::practical(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let t = Instant::now();
    let out = treedec::decompose_centralized(&g, k as u64 + 1, &cfg, &mut rng)
        .expect("decomposition failed");
    let wall_decompose = t.elapsed();
    eprintln!(
        "decompose: width = {}, depth = {} ({:.1?})",
        out.td.width(),
        out.td.stats().depth,
        wall_decompose
    );

    let t = Instant::now();
    let labels = distlabel::build_labels_centralized(&inst, &out.td, &out.info);
    let wall_label = t.elapsed();
    let label_words: u64 = labels.iter().map(|l| l.words() as u64).sum();
    eprintln!(
        "labels: {} words total ({:.1?})",
        fmt(label_words),
        wall_label
    );

    // Compaction: one accumulation, both physical layouts.
    let serve_cfg = ServeConfig::default();
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut builder = StoreBuilder::new(n);
    builder
        .add_component(&labels, &ids)
        .expect("store compaction failed");
    drop(labels);

    let t = Instant::now();
    let flat = builder
        .build_layout(serve_cfg.shard_size, StoreLayout::Flat)
        .expect("flat store build failed");
    let wall_store_flat = t.elapsed();
    let t = Instant::now();
    let packed = builder
        .build_layout(serve_cfg.shard_size, StoreLayout::Packed)
        .expect("packed store build failed");
    let wall_store_packed = t.elapsed();
    drop(builder);

    let flat_bytes = flat.bytes();
    let packed_bytes = packed.bytes();
    let bytes_per_node_flat = flat_bytes as f64 / n as f64;
    let bytes_per_node_packed = packed_bytes as f64 / n as f64;
    let compression = flat_bytes as f64 / packed_bytes as f64;
    eprintln!(
        "flat store:   {} entries, {} shards, {} bytes ({:.1} bytes/node) ({:.1?})",
        fmt(flat.entries() as u64),
        flat.shard_count(),
        fmt(flat_bytes as u64),
        bytes_per_node_flat,
        wall_store_flat
    );
    eprintln!(
        "packed store: {} entries, {} shards, {} bytes ({:.2} bytes/node, {compression:.2}x smaller) ({:.1?})",
        fmt(packed.entries() as u64),
        packed.shard_count(),
        fmt(packed_bytes as u64),
        bytes_per_node_packed,
        wall_store_packed
    );

    // The workload: one seeded skewed stream, replayed per layout.
    let spec = WorkloadSpec {
        queries: if smoke { 50_000 } else { 1_000_000 },
        hot_pairs: 4096,
        hot_fraction: 0.75,
    };
    let queries = seeded_queries(n, &spec, seed);

    // Spot-check both layouts against centralized Dijkstra before timing.
    for &(s, _) in queries.iter().step_by(queries.len() / 4) {
        let truth = twgraph::alg::dijkstra(&inst, s);
        let probe = (s + 1) % n as u32;
        for store in [&flat, &packed] {
            assert_eq!(
                store.distance(s, probe).unwrap(),
                truth.dist[probe as usize],
                "serve diverged from Dijkstra at source {s}"
            );
        }
    }

    let entries = flat.entries();
    let shards = flat.shard_count();
    // Persistence round-trip while the stores are still owned here — the
    // replays consume them into engines.
    let flat_file = file_round_trip("flat  ", &flat, &queries);
    let packed_file = file_round_trip("packed", &packed, &queries);

    let flat_run = replay("flat  ", flat, serve_cfg, &queries);
    let packed_cfg = serve_cfg.with_layout(StoreLayout::Packed);
    let packed_run = replay("packed", packed, packed_cfg, &queries);
    assert_eq!(
        flat_run.answers, packed_run.answers,
        "flat and packed replays diverged"
    );
    let single_ratio = packed_run.single_qps as f64 / flat_run.single_qps.max(1) as f64;
    eprintln!(
        "packed/flat: single {single_ratio:.2}x, batched {:.2}x, nocache {:.2}x",
        packed_run.batch_qps as f64 / flat_run.batch_qps.max(1) as f64,
        packed_run.nocache_qps as f64 / flat_run.nocache_qps.max(1) as f64
    );

    if smoke {
        eprintln!("smoke mode: skipping BENCH_serve.json");
        return;
    }

    let layout_doc =
        |bytes: usize, wall_store: Duration, run: &Replay, file: (u64, Duration, Duration)| {
            serde_json::json!({
                "store_bytes": bytes,
                "bytes_per_node": bytes as f64 / n as f64,
                "store_build_us": wall_store.as_micros() as u64,
                "single_qps": run.single_qps,
                "batched_qps": run.batch_qps,
                "batched_nocache_qps": run.nocache_qps,
                "single_hit_rate": run.single_hit_rate,
                "wall_us": serde_json::json!({
                    "single": run.single.as_micros() as u64,
                    "batched": run.batch.as_micros() as u64,
                    "batched_nocache": run.nocache.as_micros() as u64,
                }),
                "file_bytes": file.0,
                "file_write_us": file.1.as_micros() as u64,
                "file_open_us": file.2.as_micros() as u64,
            })
        };
    let doc = serde_json::json!({
        "bench": "serve",
        "family": "partial_ktree",
        "n": n,
        "m": m,
        "k": k,
        "keep": keep,
        "seed": seed,
        "width": out.td.width(),
        "depth": out.td.stats().depth,
        "label_words": label_words,
        "store_entries": entries,
        "store_shards": shards,
        "wall_us": serde_json::json!({
            "decompose": wall_decompose.as_micros() as u64,
            "label_build": wall_label.as_micros() as u64,
        }),
        "workload": serde_json::json!({
            "queries": spec.queries,
            "hot_pairs": spec.hot_pairs,
            "hot_fraction": spec.hot_fraction,
        }),
        "flat": layout_doc(flat_bytes, wall_store_flat, &flat_run, flat_file),
        "packed": layout_doc(packed_bytes, wall_store_packed, &packed_run, packed_file),
        "compression_ratio": compression,
        "packed_single_qps_ratio": single_ratio,
    });
    std::fs::write(
        "BENCH_serve.json",
        serde_json::to_string(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("\nwrote BENCH_serve.json");
}
