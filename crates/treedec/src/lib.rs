//! # treedec — fully polynomial-time tree decomposition (paper §3, App. B)
//!
//! Two layers:
//!
//! * **`Sep`** — the balanced-separator algorithm of §3.3: spanning-tree
//!   splitting ([`split`]), root harvesting, and sampled-pair minimum vertex
//!   cuts. Lemma 1: an (X, α)-balanced separator of size O(t²) in
//!   Õ(τ²D + τ³) rounds when t ≥ τ+1.
//! * **decomposition** — the recursive construction of §3.4 turning any
//!   balanced-separator routine into a tree decomposition of width
//!   O(τ² log n) and depth O(log n) (Theorem 1).
//!
//! Each layer has a *centralized* reference implementation (`sep`,
//! `decomp`) — exhaustively testable — and a *distributed* implementation
//! (`dist`) in which every data movement runs through the CONGEST
//! simulator's charged primitives, with all parts of a recursion level
//! processed in shared supersteps (the paper's parallel execution over the
//! vertex-disjoint collection {G′_x}).
//!
//! ## Constants ([`SepConfig`])
//!
//! The paper's constants (balance 14399/14400, cutoff 200t², 95 sampled
//! pairs, …) are asymptotically convenient but unusable at laptop scale —
//! a (1−1/14400)-balanced recursion has depth ≈ 14400·ln n. [`SepConfig::paper`]
//! reproduces them verbatim for fidelity tests on small inputs;
//! [`SepConfig::practical`] (default) keeps the identical algorithm
//! structure with laptop-scale constants (balance 7/8, cutoff 2t², 12
//! pairs). DESIGN.md §4.3 records the substitution.

pub mod config;
pub mod decomp;
pub mod dist;
pub mod region;
pub mod sep;
pub mod split;

pub use config::{BranchSchedule, SepConfig};
pub use decomp::{decompose_centralized, DecompError, DecompOutcome};
pub use dist::{decompose_distributed, DistDecompOutcome};
pub use region::{decompose_region, RegionNode, RegionOutcome};
pub use sep::{sep_centralized, SepOutcome};
