//! A fixed-capacity LRU map on an index-linked arena — the hot-pair cache
//! behind each shard of the [`QueryEngine`](crate::QueryEngine).
//!
//! No allocation after construction beyond the `HashMap`'s own growth to
//! capacity: slots live in flat vectors linked by `u32` indices, so a hit
//! is a map probe plus three link splices. Eviction is exact LRU (the tail
//! of the recency list).

use std::collections::HashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

/// Fixed-capacity least-recently-used map.
#[derive(Debug)]
pub struct Lru<K, V> {
    cap: usize,
    map: HashMap<K, u32>,
    keys: Vec<K>,
    vals: Vec<V>,
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
}

impl<K: Eq + Hash + Copy, V: Copy> Lru<K, V> {
    /// New cache holding at most `cap` entries (`cap == 0` disables it —
    /// every probe misses and inserts are dropped).
    pub fn new(cap: usize) -> Self {
        Lru {
            cap,
            map: HashMap::with_capacity(cap.min(1 << 20)),
            keys: Vec::with_capacity(cap.min(1 << 20)),
            vals: Vec::with_capacity(cap.min(1 << 20)),
            prev: Vec::with_capacity(cap.min(1 << 20)),
            next: Vec::with_capacity(cap.min(1 << 20)),
            head: NIL,
            tail: NIL,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The construction-time capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Unlink slot `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let (p, n) = (self.prev[i as usize], self.next[i as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Link slot `i` as the most-recently-used head.
    fn link_front(&mut self, i: u32) {
        self.prev[i as usize] = NIL;
        self.next[i as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up `k`, refreshing its recency on a hit.
    pub fn get(&mut self, k: &K) -> Option<V> {
        let i = *self.map.get(k)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(self.vals[i as usize])
    }

    /// Insert (or refresh) `k → v`, evicting the least-recently-used entry
    /// when at capacity.
    pub fn insert(&mut self, k: K, v: V) {
        if self.cap == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&k) {
            self.vals[i as usize] = v;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return;
        }
        let slot = if self.map.len() < self.cap {
            let slot = self.keys.len() as u32;
            self.keys.push(k);
            self.vals.push(v);
            self.prev.push(NIL);
            self.next.push(NIL);
            slot
        } else {
            // Reuse the LRU tail slot for the incoming key.
            let slot = self.tail;
            self.unlink(slot);
            self.map.remove(&self.keys[slot as usize]);
            self.keys[slot as usize] = k;
            self.vals[slot as usize] = v;
            slot
        };
        self.map.insert(k, slot);
        self.link_front(slot);
    }

    /// Iterate the live entries (arbitrary order — arena slots may hold
    /// evicted keys, so iteration goes through map membership).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, &i)| (k, &self.vals[i as usize]))
    }

    /// Drop every entry (capacity is retained).
    pub fn clear(&mut self) {
        self.map.clear();
        self.keys.clear();
        self.vals.clear();
        self.prev.clear();
        self.next.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c: Lru<u32, u32> = Lru::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(10)); // 1 refreshed; LRU is now 2
        c.insert(4, 40);
        assert_eq!(c.get(&2), None, "2 was LRU and must be gone");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.get(&4), Some(40));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn refresh_on_insert_of_existing_key() {
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh: 2 becomes LRU
        c.insert(3, 30);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn zero_capacity_is_a_null_cache() {
        let mut c: Lru<u32, u32> = Lru::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    /// Regression (issue 7): capacity 1 must evict on every distinct
    /// insert without ever touching a NIL sentinel link — the list head
    /// and tail are the same slot, the degenerate splice case.
    #[test]
    fn capacity_one_evicts_every_distinct_insert() {
        let mut c: Lru<u32, u32> = Lru::new(1);
        for i in 0..50u32 {
            c.insert(i, i * 10);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(i * 10));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None, "previous entry must be evicted");
            }
        }
        // Refreshing the sole entry keeps it resident.
        c.insert(49, 7);
        assert_eq!(c.get(&49), Some(7));
        c.clear();
        assert!(c.is_empty());
        c.insert(3, 3);
        assert_eq!(c.get(&3), Some(3));
    }

    /// Reference model for the property test: exact LRU over a vector
    /// kept most-recent-first. O(cap) per op — fine for tiny capacities.
    struct Model {
        cap: usize,
        items: Vec<(u32, u64)>,
    }

    impl Model {
        fn get(&mut self, k: u32) -> Option<u64> {
            let i = self.items.iter().position(|&(key, _)| key == k)?;
            let hit = self.items.remove(i);
            self.items.insert(0, hit);
            Some(hit.1)
        }

        fn insert(&mut self, k: u32, v: u64) {
            if self.cap == 0 {
                return;
            }
            if let Some(i) = self.items.iter().position(|&(key, _)| key == k) {
                self.items.remove(i);
            } else if self.items.len() == self.cap {
                self.items.pop();
            }
            self.items.insert(0, (k, v));
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Satellite (issue 7): over capacities 0–4 (the sentinel-heavy
            /// regimes) every interleaving of gets and inserts must agree
            /// with the reference model — same hits, same values, same
            /// residency — and the arena must never index out of bounds.
            #[test]
            fn tiny_capacities_match_reference_model(
                cap in 0usize..=4,
                keyspace in 1u32..=7,
                ops in 1usize..=300,
                seed in 0u64..1_000_000,
            ) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut lru: Lru<u32, u64> = Lru::new(cap);
                let mut model = Model { cap, items: Vec::new() };
                for step in 0..ops {
                    let k = rng.gen_range(0..keyspace);
                    if rng.gen_bool(0.5) {
                        let v = step as u64;
                        lru.insert(k, v);
                        model.insert(k, v);
                    } else {
                        let (got, want) = (lru.get(&k), model.get(k));
                        prop_assert!(
                            got == want,
                            "cap {cap} step {step} key {k}: got {got:?}, want {want:?}"
                        );
                    }
                    prop_assert_eq!(lru.len(), model.items.len());
                    prop_assert!(lru.len() <= cap, "residency exceeded capacity");
                }
                // Final state: identical membership and values.
                let mut got: Vec<(u32, u64)> =
                    lru.iter().map(|(&k, &v)| (k, v)).collect();
                got.sort_unstable();
                let mut want = model.items.clone();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn heavy_churn_stays_bounded_and_consistent() {
        let mut c: Lru<u64, u64> = Lru::new(16);
        for i in 0..10_000u64 {
            c.insert(i % 37, i);
            assert!(c.len() <= 16);
            if let Some(v) = c.get(&(i % 37)) {
                assert_eq!(v, i);
            } else {
                panic!("just-inserted key missing");
            }
        }
        c.clear();
        assert!(c.is_empty());
        c.insert(5, 5);
        assert_eq!(c.get(&5), Some(5));
    }
}
