//! Property-based invariants across the whole stack (proptest).

use lowtw::prelude::*;
use lowtw::{baselines, bmatch, twgraph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 1 invariants: every decomposition of a random partial
    /// k-tree is valid and its width does not exceed the configured O(t²
    /// log n) envelope.
    #[test]
    fn decomposition_always_valid(
        n in 24usize..90,
        k in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let g = twgraph::gen::partial_ktree(n, k, 0.7, seed);
        let session = Session::decompose(&g, k as u64 + 1, seed);
        prop_assert!(session.td.verify(&g).is_ok());
        let cfg = lowtw::SepConfig::practical(n);
        let per_level = cfg.size_bound(session.t_used) as usize;
        let bound = per_level * (session.depth() + 1) + 1;
        prop_assert!(
            session.width() <= bound,
            "width {} > envelope {bound}", session.width()
        );
    }

    /// Theorem 2 / Lemma 2: the decoder is exact on random directed
    /// weighted multigraph instances (sampled pairs).
    #[test]
    fn labels_decode_exactly(
        n in 20usize..60,
        k in 1usize..4,
        wmax in 1u64..40,
        seed in 0u64..1_000_000,
    ) {
        let g = twgraph::gen::partial_ktree(n, k, 0.75, seed);
        let inst = twgraph::gen::random_orientation(&g, wmax, 0.4, seed ^ 0xabc);
        let session = Session::decompose(&g, k as u64 + 1, seed);
        let labels = session.labels(&inst);
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..24 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            let want = twgraph::alg::dijkstra(&inst, u).dist[v as usize];
            prop_assert_eq!(decode(&labels[u as usize], &labels[v as usize]), want);
        }
    }

    /// Theorem 4: the separator-hierarchy matcher is always maximum.
    #[test]
    fn matching_always_maximum(
        nl in 8usize..36,
        nr in 8usize..36,
        band in 1usize..4,
        p in 0.2f64..0.8,
        seed in 0u64..1_000_000,
    ) {
        let (g, side) = twgraph::gen::bipartite_banded(nl, nr, band, p, seed);
        let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
        let session = Session::decompose(&g, 3, seed);
        let out = session.max_matching(&inst, bmatch::MatchMode::Centralized);
        let want = baselines::matching_size(&baselines::hopcroft_karp(&g, &side));
        prop_assert_eq!(out.size(), want);
        prop_assert!(baselines::matching::is_valid_matching(&g, &side, &out.mate));
    }

    /// Lemma 1: separators are balanced and within the size bound.
    #[test]
    fn separators_balanced_and_small(
        n in 40usize..140,
        k in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        use lowtw::treedec::sep::sep_doubling;
        let g = twgraph::gen::partial_ktree(n, k, 0.7, seed);
        let cfg = lowtw::SepConfig::practical(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let members = vec![true; n];
        let mu = vec![1u64; n];
        let out = sep_doubling(&g, &members, &mu, k as u64 + 1, &cfg, &mut rng);
        prop_assert!(out.separator.len() as u64 <= cfg.size_bound(out.t_used));
    }

    /// Lemma 6 half of Theorem 5: the probabilistic girth never
    /// underestimates, whatever the marking randomness does.
    #[test]
    fn girth_is_sound(
        n in 8usize..24,
        wmax in 1u64..9,
        seed in 0u64..1_000_000,
    ) {
        let g = twgraph::gen::cycle(n);
        let inst = twgraph::gen::with_random_weights(&g, wmax, seed);
        let want = baselines::girth_exact_centralized(&inst);
        let session = Session::decompose(&g, 3, seed);
        let cfg = lowtw::girth::GirthConfig {
            trials_per_c: 1,
            seed,
            measure_distributed: false,
        };
        let run = lowtw::girth::girth_undirected(&inst, &session.td, &session.info, &cfg);
        prop_assert!(run.girth >= want);
    }
}
