//! `lab` — the spec-driven experiment harness CLI.
//!
//! ```sh
//! cargo run --release -p lowtw-bench --bin lab -- list
//! cargo run --release -p lowtw-bench --bin lab -- plan --profile quick
//! cargo run --release -p lowtw-bench --bin lab -- run  --profile quick --out LAB_RESULTS.json
//! cargo run --release -p lowtw-bench --bin lab -- run  --profile quick --bless   # regen baselines
//! cargo run --release -p lowtw-bench --bin lab -- gate --candidate LAB_RESULTS.json
//! ```
//!
//! Experiment specs live in `crates/bench/experiments/*.toml`
//! (`$LAB_EXPERIMENTS_DIR` overrides). Committed baselines are the
//! `BENCH_<experiment>.json` files in the repository root — one
//! [`LabReport`] per experiment, written by `run --bless` and compared by
//! `gate`. See `docs/EXPERIMENTS.md` for the spec format and the gate
//! semantics.

use lowtw_bench::lab::gate::{gate, GateConfig};
use lowtw_bench::lab::plan::{plan, Trial};
use lowtw_bench::lab::results::LabReport;
use lowtw_bench::lab::runner::run_trials;
use lowtw_bench::lab::spec::{load_all, ExperimentSpec};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("lab: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let specs = match load_all() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lab: spec error: {e}");
            return ExitCode::from(2);
        }
    };
    match cmd.as_str() {
        "list" => list(&specs),
        "plan" => plan_cmd(&specs, &opts),
        "run" => run_cmd(&specs, &opts),
        "gate" => gate_cmd(&specs, &opts),
        other => {
            eprintln!("lab: unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  lab list
  lab plan --profile <name> [--experiment <name>]
  lab run  --profile <name> [--experiment <name>] [--out <file>] [--bless]
  lab gate [--candidate <file>] [--baseline-dir <dir>] [--wall-tolerance <frac>]

  list   show every experiment spec with its profiles and variants
  plan   print the trial grid a run would execute
  run    execute the grid; --out writes one combined LabReport,
         --bless rewrites the committed BENCH_<experiment>.json baselines
  gate   diff a candidate report (default LAB_RESULTS.json) against the
         committed baselines: deterministic drift fails hard, wall-clock
         regressions fail above the tolerance (default 0.20, same host only)";

#[derive(Debug, Default)]
struct Opts {
    profile: Option<String>,
    experiment: Option<String>,
    out: Option<PathBuf>,
    bless: bool,
    candidate: Option<PathBuf>,
    baseline_dir: Option<PathBuf>,
    wall_tolerance: Option<f64>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut val = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match a.as_str() {
                "--profile" => o.profile = Some(val("--profile")?),
                "--experiment" => o.experiment = Some(val("--experiment")?),
                "--out" => o.out = Some(PathBuf::from(val("--out")?)),
                "--bless" => o.bless = true,
                "--candidate" => o.candidate = Some(PathBuf::from(val("--candidate")?)),
                "--baseline-dir" => o.baseline_dir = Some(PathBuf::from(val("--baseline-dir")?)),
                "--wall-tolerance" => {
                    let v = val("--wall-tolerance")?;
                    let t: f64 = v.parse().map_err(|e| format!("--wall-tolerance: {e}"))?;
                    // Reject unusable fractions here, before any file IO:
                    // a NaN would disable wall gating silently, a negative
                    // would fail every unchanged run.
                    if !t.is_finite() || t < 0.0 {
                        return Err(format!(
                            "--wall-tolerance must be a finite non-negative fraction, got {v:?}"
                        ));
                    }
                    o.wall_tolerance = Some(t);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(o)
    }

    fn profile(&self) -> Result<&str, String> {
        self.profile
            .as_deref()
            .ok_or_else(|| "--profile is required".to_string())
    }
}

/// The experiments selected by `--experiment` (all when absent).
fn selected<'a>(
    specs: &'a [ExperimentSpec],
    opts: &Opts,
) -> Result<Vec<&'a ExperimentSpec>, String> {
    match &opts.experiment {
        None => Ok(specs.iter().collect()),
        Some(name) => {
            let hit: Vec<&ExperimentSpec> = specs.iter().filter(|s| s.name == *name).collect();
            if hit.is_empty() {
                let known: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
                Err(format!(
                    "unknown experiment {name:?} (expected one of {known:?})"
                ))
            } else {
                Ok(hit)
            }
        }
    }
}

fn planned(specs: &[ExperimentSpec], opts: &Opts) -> Result<Vec<Trial>, String> {
    let profile = opts.profile()?;
    let chosen = selected(specs, opts)?;
    let trials: Vec<Trial> = chosen.iter().flat_map(|s| plan(s, profile)).collect();
    if trials.is_empty() {
        let known: Vec<String> = chosen
            .iter()
            .flat_map(|s| s.profiles.keys().cloned())
            .collect();
        return Err(format!(
            "no experiment defines profile {profile:?} (profiles present: {known:?})"
        ));
    }
    Ok(trials)
}

fn list(specs: &[ExperimentSpec]) -> ExitCode {
    println!(
        "{} experiments in {}",
        specs.len(),
        lowtw_bench::lab::spec::experiments_dir().display()
    );
    for s in specs {
        let profiles: Vec<&str> = s.profiles.keys().map(String::as_str).collect();
        let variants: Vec<&str> = s.variants.iter().map(|v| v.name.as_str()).collect();
        println!(
            "  {:<10} driver={:<7} profiles={profiles:?} variants={variants:?}",
            s.name,
            s.driver.name()
        );
    }
    ExitCode::SUCCESS
}

fn plan_cmd(specs: &[ExperimentSpec], opts: &Opts) -> ExitCode {
    let trials = match planned(specs, opts) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lab: {e}");
            return ExitCode::from(2);
        }
    };
    for t in &trials {
        println!("{}", t.id());
    }
    println!("{} trials", trials.len());
    ExitCode::SUCCESS
}

fn run_cmd(specs: &[ExperimentSpec], opts: &Opts) -> ExitCode {
    let profile = match opts.profile() {
        Ok(p) => p.to_string(),
        Err(e) => {
            eprintln!("lab: {e}");
            return ExitCode::from(2);
        }
    };
    let trials = match planned(specs, opts) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lab: {e}");
            return ExitCode::from(2);
        }
    };
    let rows = run_trials(&trials);
    let report = LabReport::new(&profile, rows);
    if let Some(out) = &opts.out {
        report.write_to(out).expect("write results");
        println!("wrote {} ({} rows)", out.display(), report.rows.len());
    }
    if opts.bless {
        for exp in report.experiments() {
            let sub = report.restricted_to(&exp);
            let path = PathBuf::from(format!("BENCH_{exp}.json"));
            sub.write_to(&path).expect("write baseline");
            println!("blessed {} ({} rows)", path.display(), sub.rows.len());
        }
    }
    if opts.out.is_none() && !opts.bless {
        println!(
            "ran {} trials (profile {profile}); pass --out or --bless to persist",
            report.rows.len()
        );
    }
    ExitCode::SUCCESS
}

fn gate_cmd(specs: &[ExperimentSpec], opts: &Opts) -> ExitCode {
    let candidate_path = opts
        .candidate
        .clone()
        .unwrap_or_else(|| PathBuf::from("LAB_RESULTS.json"));
    let candidate = match LabReport::load(&candidate_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lab gate: candidate {}: {e}", candidate_path.display());
            return ExitCode::FAILURE;
        }
    };
    let baseline_dir = opts
        .baseline_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("."));
    let cfg = match opts.wall_tolerance {
        // Parsing already rejected unusable values; the typed constructor
        // re-checks so the library invariant never rests on the CLI.
        Some(t) => match GateConfig::with_wall_tolerance(t) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("lab gate: {e}");
                return ExitCode::from(2);
            }
        },
        None => GateConfig::default(),
    };

    let mut outcome = lowtw_bench::lab::gate::GateOutcome::default();
    let mut experiments = candidate.experiments();
    if let Some(only) = &opts.experiment {
        experiments.retain(|e| e == only);
    }
    if experiments.is_empty() {
        eprintln!("lab gate: candidate has no rows to compare");
        return ExitCode::FAILURE;
    }
    // Also require a baseline for every spec'd experiment the candidate
    // claims to cover — and fail on candidates for unknown experiments.
    let spec_names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
    for exp in &experiments {
        if !spec_names.contains(&exp.as_str()) {
            eprintln!("lab gate: candidate row experiment {exp:?} has no spec");
            return ExitCode::FAILURE;
        }
        let path = baseline_dir.join(format!("BENCH_{exp}.json"));
        let baseline = match LabReport::load(&path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("lab gate: baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match gate(&baseline, &candidate.restricted_to(exp), &cfg) {
            Ok(o) => {
                println!(
                    "gate {exp}: {} rows, {} det metrics exact, {} wall spans checked, {} warnings",
                    o.rows_compared,
                    o.det_compared,
                    o.wall_compared,
                    o.warnings.len()
                );
                outcome.absorb(o);
            }
            Err(e) => {
                eprintln!("lab gate: {exp}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for w in &outcome.warnings {
        println!("warning: {w}");
    }
    if outcome.passed() {
        println!(
            "gate PASSED: {} rows, {} deterministic metrics bit-identical",
            outcome.rows_compared, outcome.det_compared
        );
        ExitCode::SUCCESS
    } else {
        for f in &outcome.failures {
            eprintln!("FAIL: {f}");
        }
        eprintln!("gate FAILED with {} finding(s)", outcome.failures.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::Opts;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Opts::parse(&owned)
    }

    #[test]
    fn wall_tolerance_accepts_sane_fractions() {
        for (arg, want) in [("0", 0.0), ("0.2", 0.2), ("1.5", 1.5)] {
            let o = parse(&["--wall-tolerance", arg]).unwrap();
            assert_eq!(o.wall_tolerance, Some(want), "arg {arg:?}");
        }
        assert_eq!(parse(&[]).unwrap().wall_tolerance, None);
    }

    #[test]
    fn wall_tolerance_rejects_unusable_values() {
        for bad in ["-0.1", "NaN", "inf", "-inf", "two"] {
            let err = parse(&["--wall-tolerance", bad]).unwrap_err();
            assert!(
                err.contains("--wall-tolerance"),
                "error for {bad:?} must name the flag: {err}"
            );
        }
        let err = parse(&["--wall-tolerance"]).unwrap_err();
        assert!(err.contains("needs a value"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&["--wat"]).is_err());
    }
}
