//! Message word-size accounting.

/// A message payload with a declared size in O(log n)-bit words.
///
/// Conventions (documented in DESIGN.md §3): vertex ids, part ids, hop
/// counts and distances each cost one word — the standard CONGEST
/// normalization under polynomially-bounded weights. Structured messages
/// sum their fields. A message may be many words long; the engine charges
/// the extra rounds automatically (pipelining).
pub trait WireMsg: Clone + Send {
    /// Size of this message in words (≥ 1).
    fn words(&self) -> u64 {
        1
    }
}

/// The empty payload: a bare one-word "ping" (presence is the signal).
impl WireMsg for () {}
impl WireMsg for u8 {}
impl WireMsg for u16 {}
impl WireMsg for u32 {}
impl WireMsg for u64 {}
impl WireMsg for i64 {}
impl WireMsg for bool {}
impl WireMsg for (u32, u32) {
    fn words(&self) -> u64 {
        2
    }
}
impl WireMsg for (u32, u64) {
    fn words(&self) -> u64 {
        2
    }
}
impl WireMsg for (u32, u32, u64) {
    fn words(&self) -> u64 {
        3
    }
}
impl WireMsg for (u64, u32) {
    fn words(&self) -> u64 {
        2
    }
}
impl WireMsg for (u64, u64) {
    fn words(&self) -> u64 {
        2
    }
}
impl WireMsg for (u32, u32, u32) {
    fn words(&self) -> u64 {
        3
    }
}
impl WireMsg for (u32, u64, u64) {
    fn words(&self) -> u64 {
        3
    }
}

/// Variable-length payloads: a `Vec` of fixed-size items costs the sum (and
/// at least one word, so empty keep-alive messages are still charged).
impl<T: WireMsg> WireMsg for Vec<T> {
    fn words(&self) -> u64 {
        self.iter().map(WireMsg::words).sum::<u64>().max(1)
    }
}

impl<T: WireMsg> WireMsg for Option<T> {
    fn words(&self) -> u64 {
        match self {
            Some(t) => t.words(),
            None => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(5u32.words(), 1);
        assert_eq!((1u32, 2u32).words(), 2);
        assert_eq!((1u32, 2u32, 3u64).words(), 3);
    }

    #[test]
    fn vec_sums_and_floors_at_one() {
        assert_eq!(vec![1u32, 2, 3].words(), 3);
        assert_eq!(Vec::<u32>::new().words(), 1);
        assert_eq!(vec![(1u32, 2u64), (3, 4)].words(), 4);
    }

    #[test]
    fn option_sizes() {
        assert_eq!(Some(7u64).words(), 1);
        assert_eq!(None::<u64>.words(), 1);
    }
}
