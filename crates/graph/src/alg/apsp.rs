//! All-pairs shortest paths oracles (test-scale).

use crate::alg::dijkstra::dijkstra;
use crate::multidigraph::MultiDigraph;
use crate::{dist_add, Dist, INF};

/// Floyd–Warshall over the arc table. O(n³) — only for small verification
/// instances; prefer [`apsp_dijkstra`] above a few hundred vertices.
pub fn floyd_warshall(g: &MultiDigraph) -> Vec<Vec<Dist>> {
    let n = g.n();
    let mut d = vec![vec![INF; n]; n];
    for (v, row) in d.iter_mut().enumerate() {
        row[v] = 0;
    }
    for a in g.arcs() {
        let e = &mut d[a.src as usize][a.dst as usize];
        *e = (*e).min(a.weight);
    }
    for k in 0..n {
        for i in 0..n {
            if i == k {
                continue; // relaxing through k never improves row k itself
            }
            let dik = d[i][k];
            if dik >= INF {
                continue;
            }
            // Split borrows: row k is read while row i is written.
            let (rk, ri) = if i < k {
                let (lo, hi) = d.split_at_mut(k);
                (&hi[0], &mut lo[i])
            } else {
                let (lo, hi) = d.split_at_mut(i);
                (&lo[k], &mut hi[0])
            };
            for (dij, &dkj) in ri.iter_mut().zip(rk.iter()) {
                let cand = dist_add(dik, dkj);
                if cand < *dij {
                    *dij = cand;
                }
            }
        }
    }
    d
}

/// APSP by n single-source Dijkstra runs. O(n · m log n).
pub fn apsp_dijkstra(g: &MultiDigraph) -> Vec<Vec<Dist>> {
    (0..g.n() as u32).map(|s| dijkstra(g, s).dist).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Arc;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fw_matches_dijkstra_small() {
        let g = MultiDigraph::from_arcs(
            4,
            vec![
                Arc::new(0, 1, 2),
                Arc::new(1, 2, 2),
                Arc::new(0, 2, 5),
                Arc::new(2, 3, 1),
                Arc::new(3, 0, 1),
            ],
        );
        assert_eq!(floyd_warshall(&g), apsp_dijkstra(&g));
    }

    #[test]
    fn fw_matches_dijkstra_random() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            let n = rng.gen_range(2..20);
            let m = rng.gen_range(1..60);
            let arcs: Vec<Arc> = (0..m)
                .map(|_| {
                    Arc::new(
                        rng.gen_range(0..n as u32),
                        rng.gen_range(0..n as u32),
                        rng.gen_range(0..50),
                    )
                })
                .collect();
            let g = MultiDigraph::from_arcs(n, arcs);
            assert_eq!(floyd_warshall(&g), apsp_dijkstra(&g));
        }
    }

    #[test]
    fn diagonal_is_zero() {
        let g = MultiDigraph::from_arcs(3, vec![Arc::new(0, 1, 1)]);
        let d = floyd_warshall(&g);
        for (v, row) in d.iter().enumerate() {
            assert_eq!(row[v], 0);
        }
    }
}
