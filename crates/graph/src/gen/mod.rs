//! Synthetic graph families with controlled treewidth / diameter, and
//! instance decorators (weights, orientations, bipartite structure).
//!
//! Every experiment in `docs/EXPERIMENTS.md` and every scenario in the
//! `scenarios` crate draws its workloads from here. The families are chosen
//! so that (τ, D, n) can be swept independently:
//!
//! | family | treewidth | diameter |
//! |--------|-----------|----------|
//! | [`ktree`] / [`partial_ktree`] | = k / ≤ k | Θ(log n) typically |
//! | [`banded_path`] | = k | Θ(n/k) — the D-scaling family |
//! | [`grid`] | = min(rows, cols) | rows + cols − 2 |
//! | [`cycle`] | 2 | ⌊n/2⌋ |
//! | [`random_tree`] | 1 | varies |
//! | [`series_parallel`] | ≤ 2 | varies |
//! | [`cactus`] | ≤ 2 | varies |
//! | [`halin`] | ≤ 3 | Θ(log n) typically |
//! | [`ring_of_cliques`] | c − 1 (≤ c + 1 bound) | Θ(#cliques) |
//! | [`multi_component`] | ≤ 2 (per part) | ∞ (disconnected) |
//! | [`bit_gadget`] | O(log n) | ≤ 4 — the girth/diameter separation family |
//! | [`bipartite_banded`] | ≤ 2·band+1 | Θ(n/band) |
//!
//! # Seed derivation
//!
//! Every seeded generator in this module derives its RNG stream through
//! [`derive_rng`] rather than feeding the caller's seed to
//! `SmallRng::seed_from_u64` directly. The rule:
//!
//! ```text
//! state = mix64-fold(family tag bytes, parameter count, parameter words)
//!         .wrapping_add(seed)
//! stream = SmallRng::seed_from_u64(state)
//! ```
//!
//! where `mix64` is the SplitMix64 finalizer. Consequences:
//!
//! * **Distinct seeds never collapse.** For a fixed family and fixed
//!   parameters the map `seed → state` is `x ↦ x + const` (a bijection on
//!   `u64`), and `SmallRng::seed_from_u64` is itself injective, so two
//!   different seeds always produce different streams. A derivation that
//!   XOR-ed or hashed the seed *together with* the parameters could map two
//!   `(params, seed)` pairs with coinciding parameters onto one state;
//!   folding the parameters first and adding the seed last rules that out.
//! * **Distinct families/parameters are decorrelated.** `gnp(n, 0.1, s)`
//!   and `gnp(n, 0.2, s)` no longer read the same underlying uniforms (the
//!   old construction made the p = 0.1 graph a literal subgraph of the
//!   p = 0.2 one for every shared seed), and `partial_ktree` no longer
//!   shares a stream with `ktree` at equal seeds. Float parameters enter
//!   via `f64::to_bits`, tags via their UTF-8 bytes, and the parameter
//!   count is folded in so prefix-coinciding tuples cannot alias.
//!
//! Fixed-seed outputs therefore changed once, in the PR that introduced
//! the rule; golden files were regenerated alongside.

mod families;
mod instances;

pub use families::{
    banded_path, bipartite_banded, bit_gadget, cactus, cycle, disjoint_union, gnp, grid, halin,
    ktree, multi_component, partial_ktree, path, random_tree, ring_of_cliques, series_parallel,
};
pub use instances::{
    random_orientation, with_colored_weights, with_heavy_tailed_weights, with_random_weights,
    with_unit_weights, BipartiteInstance,
};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — the bijective scrambler behind the seed rule.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the RNG stream of a seeded generator from its family `tag`, its
/// structural parameters and the caller's `seed` (see the module docs for
/// the rule and the guarantees).
pub fn derive_rng(tag: &str, params: &[u64], seed: u64) -> SmallRng {
    let mut h = 0x51_CE_5A_ED_u64; // "slice seed" domain constant
    for &b in tag.as_bytes() {
        h = mix64(h ^ u64::from(b));
    }
    h = mix64(h ^ params.len() as u64);
    for &p in params {
        h = mix64(h ^ p);
    }
    SmallRng::seed_from_u64(h.wrapping_add(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn first_words(tag: &str, params: &[u64], seed: u64) -> [u64; 4] {
        let mut rng = derive_rng(tag, params, seed);
        [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ]
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        // Coinciding parameters, nearby and far-apart seeds: no collapse.
        for s in [0u64, 1, 2, 41, u64::MAX - 1] {
            assert_ne!(
                first_words("gnp", &[100, 7], s),
                first_words("gnp", &[100, 7], s + 1),
                "seed {s} collided with {}",
                s + 1
            );
        }
    }

    #[test]
    fn distinct_params_distinct_streams() {
        assert_ne!(
            first_words("gnp", &[100, 7], 3),
            first_words("gnp", &[100, 8], 3)
        );
        assert_ne!(
            first_words("gnp", &[100], 3),
            first_words("gnp", &[100, 0], 3)
        );
        assert_ne!(
            first_words("gnp", &[100, 7], 3),
            first_words("ktree", &[100, 7], 3)
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(first_words("x", &[1, 2], 9), first_words("x", &[1, 2], 9));
    }
}
