//! Typed failures of the serving layer.
//!
//! Consistent with the workspace-wide Result sweep (PR 4): every
//! operational failure is a value, never a panic. Note what is *not* an
//! error: a query between two vertices of different connected components
//! decodes to [`twgraph::INF`] — exactly what the centralized oracles
//! report for unreachable pairs — so disconnected inputs serve cleanly.

use std::fmt;

/// A store build or query failed for a structural reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A query named a vertex id outside the store's `0..n` space.
    UnknownNode {
        /// The offending vertex id.
        node: u32,
        /// The store's vertex-space size.
        n: usize,
    },
    /// A component registered a vertex already owned by an earlier
    /// component (the component map must partition `0..n`).
    DuplicateNode {
        /// The doubly-claimed global vertex id.
        node: u32,
    },
    /// After all components were registered, a vertex was left without a
    /// label (the component map must cover `0..n`).
    UncoveredNode {
        /// The unclaimed global vertex id.
        node: u32,
    },
    /// A label entry named a hub outside its component's vertex list —
    /// the `old_of` mapping cannot translate it to a global id.
    HubOutOfRange {
        /// The component-local hub id.
        hub: u32,
        /// The component's vertex count.
        comp_n: usize,
    },
    /// A component handed the builder label and vertex lists of different
    /// lengths — there is no well-defined local-to-global mapping.
    ComponentShapeMismatch {
        /// Labels supplied.
        labels: usize,
        /// Vertices supplied (`old_of` length).
        nodes: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServeError::UnknownNode { node, n } => {
                write!(f, "query names unknown node {node} (store holds 0..{n})")
            }
            ServeError::DuplicateNode { node } => {
                write!(f, "node {node} registered by two components")
            }
            ServeError::UncoveredNode { node } => {
                write!(f, "node {node} left without a label by every component")
            }
            ServeError::HubOutOfRange { hub, comp_n } => {
                write!(
                    f,
                    "label entry hub {hub} outside its component (size {comp_n})"
                )
            }
            ServeError::ComponentShapeMismatch { labels, nodes } => {
                write!(
                    f,
                    "component registered {labels} labels for {nodes} vertices"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_coordinates() {
        let e = ServeError::UnknownNode { node: 9, n: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        assert!(ServeError::DuplicateNode { node: 3 }
            .to_string()
            .contains('3'));
        assert!(ServeError::UncoveredNode { node: 2 }
            .to_string()
            .contains('2'));
        assert!(ServeError::HubOutOfRange { hub: 8, comp_n: 5 }
            .to_string()
            .contains('8'));
    }
}
