//! The `scenarios` bench: the full scenario × pipeline cross-product from
//! the `scenarios` registry, every cell differentially verified against
//! its centralized oracle while running, with charged costs and wall
//! clock reported per cell. Writes `BENCH_scenarios.json` with one entry
//! per cell.
//!
//! ```sh
//! cargo run --release -p lowtw-bench --bin scenarios
//! cargo run --release -p lowtw-bench --bin scenarios -- girth   # one pipeline
//! ```
//!
//! Optional positional argument: a pipeline name (`sssp`, `distlabel`,
//! `girth`, `matching`, `walks`) to restrict the matrix to one row —
//! filtered runs print the table but do not rewrite `BENCH_scenarios.json`.

use lowtw_bench::fmt;
use scenarios::{all_pipelines, corpus, run_cell, CellReport};
use std::time::Instant;

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    let pipelines = all_pipelines();
    if let Some(f) = filter.as_deref() {
        assert!(
            pipelines.iter().any(|p| p.name() == f),
            "unknown pipeline {f:?}; expected one of {:?}",
            pipelines.iter().map(|p| p.name()).collect::<Vec<_>>()
        );
    }
    let scenarios = corpus();

    let mut entries: Vec<serde_json::Value> = Vec::new();
    let mut reports: Vec<(CellReport, u64)> = Vec::new();
    let t_total = Instant::now();
    for sc in &scenarios {
        for p in &pipelines {
            if filter.as_deref().is_some_and(|f| f != p.name()) {
                continue;
            }
            let t = Instant::now();
            let rep = run_cell(sc, p.as_ref()).unwrap_or_else(|e| panic!("cell failed: {e}"));
            // Microsecond wall clock: many cells finish in well under a
            // millisecond, which the old `wall_ms` field truncated to 0.
            let wall_us = t.elapsed().as_micros() as u64;
            eprintln!(
                "{:<28} {:<10} rounds = {:>9}  checked = {:>5}  ({wall_us} µs)",
                rep.scenario,
                rep.pipeline,
                fmt(rep.metrics.rounds),
                fmt(rep.checked as u64)
            );
            let mut json = rep.json();
            json["wall_us"] = serde_json::json!(wall_us);
            entries.push(json);
            reports.push((rep, wall_us));
        }
    }

    println!(
        "\n== scenario matrix: {} cells, every one oracle-verified ({:.1?}) ==",
        reports.len(),
        t_total.elapsed()
    );
    println!(
        "{:<28} {:<10} {:>6} {:>5} {:>9} {:>11} {:>11} {:>8} {:>9}",
        "scenario", "pipeline", "n", "comps", "rounds", "messages", "words", "checked", "µs"
    );
    for (r, wall_us) in &reports {
        println!(
            "{:<28} {:<10} {:>6} {:>5} {:>9} {:>11} {:>11} {:>8} {:>9}",
            r.scenario,
            r.pipeline,
            r.n,
            r.components,
            fmt(r.metrics.rounds),
            fmt(r.metrics.messages),
            fmt(r.metrics.words),
            r.checked,
            wall_us
        );
    }

    if filter.is_some() {
        println!("\nfiltered run: BENCH_scenarios.json left untouched");
        return;
    }
    let doc = serde_json::json!({
        "bench": "scenarios",
        "scenarios": scenarios.len(),
        "pipelines": pipelines.len(),
        "cells": entries,
    });
    std::fs::write(
        "BENCH_scenarios.json",
        serde_json::to_string(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("\nwrote BENCH_scenarios.json ({} cells)", reports.len());
}
