//! The `serve` bench: build-once / query-many on a large partial k-tree —
//! centralized decomposition + label construction, compaction into the
//! sharded `labelserve` store, then a seeded skewed workload replayed
//! three ways (single queries, one rayon batch, batch with the cache off)
//! with throughput and cache behavior reported. Writes `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p lowtw-bench --bin serve               # n = 100_000
//! cargo run --release -p lowtw-bench --bin serve -- 20000 2    # smaller / wider
//! ```
//!
//! Positional arguments: `n` (default 100_000), `k` (default 1), `keep`
//! (default 0.5), `seed` (default 1) — the same family and defaults as the
//! `engine` bench, so the build-side numbers line up.

use labelserve::{seeded_queries, QueryEngine, ServeConfig, StoreBuilder, WorkloadSpec};
use lowtw::{distlabel, treedec, twgraph};
use lowtw_bench::{fmt, rate_per_sec};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |i: usize, default: f64| -> f64 {
        args.get(i)
            .map(|s| s.parse().expect("numeric argument"))
            .unwrap_or(default)
    };
    let n = arg(0, 100_000.0) as usize;
    let k = arg(1, 1.0) as usize;
    let keep = arg(2, 0.5);
    let seed = arg(3, 1.0) as u64;

    eprintln!("generating partial {k}-tree, n = {n}, keep = {keep}, seed = {seed} ...");
    let g = twgraph::gen::partial_ktree(n, k, keep, seed);
    let inst = twgraph::gen::with_random_weights(&g, 30, seed);
    let m = g.m();

    let cfg = lowtw::SepConfig::practical(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let t = Instant::now();
    let out = treedec::decompose_centralized(&g, k as u64 + 1, &cfg, &mut rng)
        .expect("decomposition failed");
    let wall_decompose = t.elapsed();
    eprintln!(
        "decompose: width = {}, depth = {} ({:.1?})",
        out.td.width(),
        out.td.stats().depth,
        wall_decompose
    );

    let t = Instant::now();
    let labels = distlabel::build_labels_centralized(&inst, &out.td, &out.info);
    let wall_label = t.elapsed();
    let label_words: u64 = labels.iter().map(|l| l.words() as u64).sum();
    eprintln!(
        "labels: {} words total ({:.1?})",
        fmt(label_words),
        wall_label
    );

    // Compaction: per-node Vec labels → flat sharded CSR arenas.
    let serve_cfg = ServeConfig::default();
    let t = Instant::now();
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut builder = StoreBuilder::new(n);
    builder
        .add_component(&labels, &ids)
        .expect("store compaction failed");
    let store = builder
        .build(serve_cfg.shard_size)
        .expect("store build failed");
    let wall_store = t.elapsed();
    let store_bytes = store.bytes();
    let bytes_per_node = store_bytes as f64 / n as f64;
    eprintln!(
        "store: {} entries, {} shards, {} bytes ({:.1} bytes/node) ({:.1?})",
        fmt(store.entries() as u64),
        store.shard_count(),
        fmt(store_bytes as u64),
        bytes_per_node,
        wall_store
    );
    let engine = QueryEngine::new(store, serve_cfg);

    // The workload: one seeded skewed stream, replayed three ways.
    let spec = WorkloadSpec {
        queries: 1_000_000,
        hot_pairs: 4096,
        hot_fraction: 0.75,
    };
    let queries = seeded_queries(n, &spec, seed);

    // Spot-check correctness against centralized Dijkstra before timing.
    for &(s, _) in queries.iter().step_by(queries.len() / 4) {
        let truth = twgraph::alg::dijkstra(&inst, s);
        for &(qs, qt) in queries.iter().take(64) {
            if qs == s {
                assert_eq!(engine.distance(qs, qt).unwrap(), truth.dist[qt as usize]);
            }
        }
        assert_eq!(
            engine.distance(s, (s + 1) % n as u32).unwrap(),
            truth.dist[((s + 1) % n as u32) as usize],
            "serve diverged from Dijkstra at source {s}"
        );
    }
    engine.reset();

    let t = Instant::now();
    for &(s, tgt) in &queries {
        engine.distance(s, tgt).expect("single query failed");
    }
    let wall_single = t.elapsed();
    let single_stats = engine.stats();
    let single_qps = rate_per_sec(queries.len() as u64, wall_single);
    eprintln!(
        "single:  {} q in {:.1?} = {} q/s (hit rate {:.1}%)",
        fmt(queries.len() as u64),
        wall_single,
        fmt(single_qps),
        single_stats.hit_rate() * 100.0
    );

    engine.reset();
    let t = Instant::now();
    let answers = engine.batch(&queries).expect("batch failed");
    let wall_batch = t.elapsed();
    let batch_stats = engine.stats();
    let batch_qps = rate_per_sec(queries.len() as u64, wall_batch);
    eprintln!(
        "batched: {} q in {:.1?} = {} q/s (hit rate {:.1}%)",
        fmt(queries.len() as u64),
        wall_batch,
        fmt(batch_qps),
        batch_stats.hit_rate() * 100.0
    );

    // Cache off: the same store rewrapped without hot-pair reuse.
    let nocache = QueryEngine::new(engine.into_store(), serve_cfg.without_cache());
    let t = Instant::now();
    let raw = nocache.batch(&queries).expect("uncached batch failed");
    let wall_nocache = t.elapsed();
    let nocache_qps = rate_per_sec(queries.len() as u64, wall_nocache);
    assert_eq!(answers, raw, "cache on/off answers diverged");
    eprintln!(
        "nocache: {} q in {:.1?} = {} q/s",
        fmt(queries.len() as u64),
        wall_nocache,
        fmt(nocache_qps)
    );

    let doc = serde_json::json!({
        "bench": "serve",
        "family": "partial_ktree",
        "n": n,
        "m": m,
        "k": k,
        "keep": keep,
        "seed": seed,
        "width": out.td.width(),
        "depth": out.td.stats().depth,
        "label_words": label_words,
        "store_entries": nocache.store().entries(),
        "store_shards": nocache.store().shard_count(),
        "store_bytes": store_bytes,
        "bytes_per_node": bytes_per_node,
        "wall_us": serde_json::json!({
            "decompose": wall_decompose.as_micros() as u64,
            "label_build": wall_label.as_micros() as u64,
            "store_build": wall_store.as_micros() as u64,
            "single": wall_single.as_micros() as u64,
            "batched": wall_batch.as_micros() as u64,
            "batched_nocache": wall_nocache.as_micros() as u64,
        }),
        "workload": serde_json::json!({
            "queries": spec.queries,
            "hot_pairs": spec.hot_pairs,
            "hot_fraction": spec.hot_fraction,
        }),
        "single_qps": single_qps,
        "batched_qps": batch_qps,
        "batched_nocache_qps": nocache_qps,
        "cache_hit_rate": batch_stats.hit_rate(),
    });
    std::fs::write(
        "BENCH_serve.json",
        serde_json::to_string(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("\nwrote BENCH_serve.json");
}
