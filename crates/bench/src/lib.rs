//! Shared helpers for the experiment harness: the [`lab`] spec/plan/run/
//! gate pipeline, the [`drivers`] that execute each experiment, and the
//! table/format utilities the drivers print with.

pub mod drivers;
pub mod lab;

use serde::Serialize;

/// Print an aligned text table and emit each row as a JSON line (prefixed
/// `#json `) so downstream tooling can scrape the numbers.
pub fn table<R: Serialize>(title: &str, headers: &[&str], rows: &[(Vec<String>, R)]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|(r, _)| r.get(i).map_or(0, String::len))
                .max()
                .unwrap_or(0)
                .max(h.len())
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for (cells, rec) in rows {
        line(cells.clone());
        println!("#json {}", serde_json::to_string(rec).unwrap());
    }
}

/// Format a `u64` compactly.
pub fn fmt(x: u64) -> String {
    x.to_string()
}

/// Events-per-second over a measured wall clock, kept finite on sub-tick
/// clocks: a `Duration` that rounded to zero is clamped to one
/// microsecond (the resolution every bench reports in), so the committed
/// `BENCH_*.json` never carries the `u64`-saturated garbage that
/// `count / 0.0` would cast to. Regression for issue 7's rate-computation
/// satellite — tiny cells on fast machines can finish inside one tick.
pub fn rate_per_sec(count: u64, wall: std::time::Duration) -> u64 {
    let secs = wall.as_secs_f64().max(1e-6);
    (count as f64 / secs) as u64
}

/// Format a ratio with 2 decimals.
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "-".into()
    } else {
        format!("{:.2}", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints() {
        #[derive(Serialize)]
        struct R {
            n: usize,
        }
        table(
            "demo",
            &["n", "rounds"],
            &[(vec!["10".into(), "20".into()], R { n: 10 })],
        );
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(5, 0), "-");
        assert_eq!(ratio(6, 3), "2.00");
    }

    #[test]
    fn rate_stays_finite_on_sub_tick_walls() {
        use std::time::Duration;
        assert_eq!(rate_per_sec(1_000_000, Duration::from_secs(1)), 1_000_000);
        assert_eq!(rate_per_sec(500, Duration::from_millis(250)), 2_000);
        // The zero-wall regression: clamps to the 1 µs resolution floor
        // instead of dividing to inf (which `as u64` saturates to MAX).
        assert_eq!(rate_per_sec(5, Duration::ZERO), 5_000_000);
        assert!(rate_per_sec(u32::MAX as u64, Duration::ZERO) < u64::MAX);
        assert_eq!(rate_per_sec(0, Duration::ZERO), 0);
        // Sub-microsecond walls clamp identically.
        assert_eq!(
            rate_per_sec(7, Duration::from_nanos(3)),
            rate_per_sec(7, Duration::ZERO)
        );
    }
}
