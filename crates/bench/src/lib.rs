//! Shared helpers for the experiment tables.

use serde::Serialize;

/// Print an aligned text table and emit each row as a JSON line (prefixed
/// `#json `) so downstream tooling can scrape the numbers.
pub fn table<R: Serialize>(title: &str, headers: &[&str], rows: &[(Vec<String>, R)]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|(r, _)| r.get(i).map_or(0, String::len))
                .max()
                .unwrap_or(0)
                .max(h.len())
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for (cells, rec) in rows {
        line(cells.clone());
        println!("#json {}", serde_json::to_string(rec).unwrap());
    }
}

/// Format a `u64` compactly.
pub fn fmt(x: u64) -> String {
    x.to_string()
}

/// Format a ratio with 2 decimals.
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "-".into()
    } else {
        format!("{:.2}", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints() {
        #[derive(Serialize)]
        struct R {
            n: usize,
        }
        table(
            "demo",
            &["n", "rounds"],
            &[(vec!["10".into(), "20".into()], R { n: 10 })],
        );
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(5, 0), "-");
        assert_eq!(ratio(6, 3), "2.00");
    }
}
