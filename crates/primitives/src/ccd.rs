//! CCD — connected component detection (paper Lemma 8).
//!
//! Min-UID label flooding restricted to *active* nodes and an *allowed*
//! edge predicate (evaluated symmetrically at both endpoints, from purely
//! local data). Every active node ends up knowing the minimum UID in its
//! component of the allowed subgraph — a globally unique component id.
//! Rounds ≈ the largest component diameter (measured; see DESIGN.md §4 on
//! why flooding is the honest substitute here).
//!
//! The flood itself runs scoped to the active set
//! ([`Network::run_until_quiet_on`]): the charged metrics are identical to
//! a full-network execution (inactive nodes never send), but a superstep
//! costs O(active) rather than O(n).

use congest_sim::{CongestError, Network};

#[derive(Clone)]
struct CcdState {
    label: u64,
    fresh: bool,
}

/// [`detect_on`] with a caller-supplied O(1) membership predicate
/// (`is_active(v)` must hold exactly for the vertices of `active`) —
/// callers that already track membership (e.g. a recursion's stamp sets)
/// avoid the dense per-call mask a standalone invocation would build.
pub fn detect_on_with(
    net: &mut Network,
    active: &[u32],
    is_active: impl Fn(u32) -> bool + Sync,
    allowed: impl Fn(u32, u32) -> bool + Sync,
) -> Result<Vec<u64>, CongestError> {
    let n = net.n();
    let g = net.graph_handle();
    let mut states: Vec<CcdState> = active
        .iter()
        .map(|&v| CcdState {
            label: net.uid(v),
            fresh: true,
        })
        .collect();
    net.run_until_quiet_on(
        active,
        &mut states,
        |u, s: &CcdState| {
            if s.fresh {
                g.neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| is_active(v) && allowed(u, v))
                    .map(|v| (v, s.label))
                    .collect()
            } else {
                Vec::new()
            }
        },
        |_v, s, inbox| {
            s.fresh = false;
            for (_src, label) in inbox {
                if label < s.label {
                    s.label = label;
                    s.fresh = true;
                }
            }
        },
        8 * n as u64 + 64,
    )?;
    Ok(states.into_iter().map(|s| s.label).collect())
}

/// Detect components among the sorted active-node list `active` across
/// edges `{u, v}` with both endpoints active and `allowed(u, v)` true.
/// Returns, aligned with `active`, the component label of each active node
/// (the minimum UID in its component).
pub fn detect_on(
    net: &mut Network,
    active: &[u32],
    allowed: impl Fn(u32, u32) -> bool + Sync,
) -> Result<Vec<u64>, CongestError> {
    // Membership mask for O(1) "is my neighbour active" checks.
    let mut is_active = vec![false; net.n()];
    for &v in active {
        is_active[v as usize] = true;
    }
    detect_on_with(net, active, |v| is_active[v as usize], allowed)
}

/// Detect components among `active` nodes across edges `{u, v}` with both
/// endpoints active and `allowed(u, v)` true. Returns per node the
/// component label (min UID in the component), `None` for inactive nodes.
pub fn detect(
    net: &mut Network,
    active: &[bool],
    allowed: impl Fn(u32, u32) -> bool + Sync,
) -> Result<Vec<Option<u64>>, CongestError> {
    let n = net.n();
    assert_eq!(active.len(), n);
    let list: Vec<u32> = (0..n as u32).filter(|&v| active[v as usize]).collect();
    let labels = detect_on(net, &list, allowed)?;
    let mut out = vec![None; n];
    for (i, &v) in list.iter().enumerate() {
        out[v as usize] = Some(labels[i]);
    }
    Ok(out)
}

/// Compact the labels of [`detect`] into dense part ids `0..N` (ordered by
/// label) — a free local relabeling given a globally known label list, which
/// in a real execution is one aggregation the caller has typically already
/// paid for. Returns `(per-node part id, part count)`.
pub fn compact_labels(labels: &[Option<u64>]) -> (Vec<Option<u32>>, usize) {
    let mut distinct: Vec<u64> = labels.iter().flatten().copied().collect();
    distinct.sort_unstable();
    distinct.dedup();
    let ids = labels
        .iter()
        .map(|l| l.map(|x| distinct.binary_search(&x).unwrap() as u32))
        .collect();
    (ids, distinct.len())
}

/// Compact the aligned labels of [`detect_on`] into dense part ids `0..N`
/// (ordered by label). Returns `(per-active-position part id, part count)`.
pub fn compact_labels_on(labels: &[u64]) -> (Vec<u32>, usize) {
    let mut distinct: Vec<u64> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let ids = labels
        .iter()
        .map(|x| distinct.binary_search(x).unwrap() as u32)
        .collect();
    (ids, distinct.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{Network, NetworkConfig};
    use twgraph::alg::components;
    use twgraph::gen::{grid, path};
    use twgraph::UGraph;

    #[test]
    fn whole_graph_single_component() {
        let g = grid(3, 4);
        let mut net = Network::new(g, NetworkConfig::default());
        let labels = detect(&mut net, &[true; 12], |_, _| true).unwrap();
        let first = labels[0].unwrap();
        assert!(labels.iter().all(|&l| l == Some(first)));
    }

    #[test]
    fn removing_cut_vertex_splits() {
        // Path 0-1-2-3-4; deactivate 2 → components {0,1} and {3,4}.
        let g = path(5);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut active = vec![true; 5];
        active[2] = false;
        let labels = detect(&mut net, &active, |_, _| true).unwrap();
        assert!(labels[2].is_none());
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        let (ids, count) = compact_labels(&labels);
        assert_eq!(count, 2);
        assert!(ids[2].is_none());
    }

    #[test]
    fn scoped_detect_matches_dense() {
        let g = grid(4, 5);
        let active_list: Vec<u32> = (0..20u32).filter(|&v| v % 7 != 0).collect();
        let active: Vec<bool> = (0..20).map(|v| v % 7 != 0).collect();
        let mut net_a = Network::new(g.clone(), NetworkConfig::default());
        let dense = detect(&mut net_a, &active, |_, _| true).unwrap();
        let mut net_b = Network::new(g, NetworkConfig::default());
        let scoped = detect_on(&mut net_b, &active_list, |_, _| true).unwrap();
        assert_eq!(*net_a.metrics(), *net_b.metrics());
        for (i, &v) in active_list.iter().enumerate() {
            assert_eq!(dense[v as usize], Some(scoped[i]));
        }
        let (ids, k) = compact_labels_on(&scoped);
        let (dense_ids, dk) = compact_labels(&dense);
        assert_eq!(k, dk);
        for (i, &v) in active_list.iter().enumerate() {
            assert_eq!(dense_ids[v as usize], Some(ids[i]));
        }
    }

    #[test]
    fn edge_filter_respected() {
        // Cycle of 6 with edges {0,1} and {3,4} forbidden → two arcs.
        let g = twgraph::gen::cycle(6);
        let mut net = Network::new(g, NetworkConfig::default());
        let forbidden = [(0u32, 1u32), (3, 4)];
        let labels = detect(&mut net, &[true; 6], |u, v| {
            let key = if u < v { (u, v) } else { (v, u) };
            !forbidden.contains(&key)
        })
        .unwrap();
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[1]);
        assert_eq!(labels[4], labels[5]);
        assert_eq!(labels[5], labels[0]);
    }

    #[test]
    fn matches_centralized_components() {
        let g = UGraph::from_edges(8, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (5, 7)]);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let labels = detect(&mut net, &[true; 8], |_, _| true).unwrap();
        let (comp, k) = components(&g);
        let (ids, count) = compact_labels(&labels);
        assert_eq!(count, k);
        for u in 0..8 {
            for v in 0..8 {
                assert_eq!(
                    comp[u] == comp[v],
                    ids[u] == ids[v],
                    "component mismatch for {u},{v}"
                );
            }
        }
    }
}
