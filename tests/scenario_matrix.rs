//! The scenario × pipeline cross-product, differentially checked.
//!
//! Every registered [`scenarios::Scenario`] runs through every registered
//! [`scenarios::Pipeline`]; each pipeline internally asserts equality
//! against the centralized oracles in `baselines::oracles`, so a cell that
//! diverges (or panics) fails this suite with its scenario name. The same
//! matrix backs the `scenarios` bench bin (`BENCH_scenarios.json`) — this
//! suite is the correctness gate, the bench bin the cost reporter.

use scenarios::{all_pipelines, corpus, run_cell, update_mixes};

/// One test per pipeline so failures localize; each runs the full corpus.
fn run_pipeline_over_corpus(name: &str) {
    let pipelines = all_pipelines();
    let p = pipelines
        .iter()
        .find(|p| p.name() == name)
        .unwrap_or_else(|| panic!("pipeline {name} not registered"));
    for sc in corpus() {
        let rep = run_cell(&sc, p.as_ref()).unwrap_or_else(|e| panic!("cell failed: {e}"));
        assert!(rep.checked > 0, "{}/{name}: cell verified nothing", sc.name);
        assert_eq!(rep.scenario, sc.name);
        assert!(rep.components >= 1, "{}", sc.name);
        // Scenarios with a declared bound must keep their decomposition
        // width in the Theorem-1 regime: O(τ² log n) with practical
        // constants — sanity-capped here at elim_bound² · log₂ n + a
        // small slack rather than n.
        if let (Some(b), true) = (sc.elim_bound, rep.width > 0) {
            let n = rep.n.max(4);
            let cap = (b * b + b + 2) * (usize::BITS - n.leading_zeros()) as usize;
            assert!(
                rep.width <= cap,
                "{}/{name}: decomposition width {} blew past the τ²·log n regime (cap {cap})",
                sc.name,
                rep.width
            );
        }
    }
}

#[test]
fn matrix_sssp() {
    run_pipeline_over_corpus("sssp");
}

#[test]
fn matrix_distlabel() {
    run_pipeline_over_corpus("distlabel");
}

#[test]
fn matrix_girth() {
    run_pipeline_over_corpus("girth");
}

#[test]
fn matrix_matching() {
    run_pipeline_over_corpus("matching");
}

#[test]
fn matrix_walks() {
    run_pipeline_over_corpus("walks");
}

#[test]
fn matrix_serve() {
    run_pipeline_over_corpus("serve");
}

#[test]
fn matrix_update() {
    run_pipeline_over_corpus("update");
}

#[test]
fn matrix_maxflow() {
    run_pipeline_over_corpus("maxflow");
}

#[test]
fn matrix_counting() {
    run_pipeline_over_corpus("counting");
}

#[test]
fn matrix_fo() {
    run_pipeline_over_corpus("fo");
}

/// The corpus × pipeline dimensions the acceptance criteria pin: at least
/// five *new* families and all ten pipelines present.
#[test]
fn matrix_dimensions() {
    let c = corpus();
    let new_families = [
        "series_parallel",
        "cactus",
        "halin",
        "ring_of_cliques",
        "multi_component",
    ];
    for f in new_families {
        assert!(
            c.iter().any(|s| s.family.tag() == f),
            "family {f} missing from the corpus"
        );
    }
    assert!(
        c.iter().any(|s| s.weights.tag() == "heavy_tailed"),
        "heavy-tailed weight model missing"
    );
    assert!(
        c.iter().any(|s| s.tw_bound.is_none()),
        "unbounded control family missing"
    );
    let p = all_pipelines();
    assert_eq!(p.len(), 10);
    let names: Vec<_> = p.iter().map(|p| p.name()).collect();
    assert_eq!(
        names,
        [
            "sssp",
            "distlabel",
            "girth",
            "matching",
            "walks",
            "serve",
            "update",
            "maxflow",
            "counting",
            "fo"
        ]
    );
    // The update:query-ratio axis is pinned: three mixes, each reporting
    // its own QPS detail row in every update cell.
    let mixes = update_mixes();
    assert_eq!(mixes.len(), 3);
    assert_eq!(
        mixes.iter().map(|m| m.name).collect::<Vec<_>>(),
        ["read_heavy", "balanced", "write_heavy"]
    );
    assert!(
        mixes[0].updates < mixes[0].queries && mixes[2].updates > mixes[2].queries,
        "mix ratios must span read-heavy through write-heavy"
    );
    // Full matrix cell count: every scenario × every pipeline.
    assert_eq!(
        c.len() * p.len(),
        120,
        "matrix is 12 scenarios × 10 pipelines"
    );
}

/// The portfolio pipelines report the detail rows the bench bin (and the
/// `portfolio` experiment baseline) serializes.
#[test]
fn portfolio_cells_report_detail() {
    let pipelines = all_pipelines();
    let sc = corpus()
        .into_iter()
        .find(|s| s.name == "multi_component/uniform")
        .unwrap();
    let expected: [(&str, &[&str]); 3] = [
        ("maxflow", &["pairs", "flow_total", "inf_pairs", "cap_max"]),
        (
            "counting",
            &["triangles", "cycles4", "cycles5", "bag_triples_scanned"],
        ),
        (
            "fo",
            &["sentences", "verdicts_true", "radius", "dist_pairs"],
        ),
    ];
    for (name, keys) in expected {
        let p = pipelines.iter().find(|p| p.name() == name).unwrap();
        let rep = run_cell(&sc, p.as_ref()).unwrap_or_else(|e| panic!("cell failed: {e}"));
        for key in keys {
            assert!(
                rep.detail.iter().any(|&(k, _)| k == *key),
                "{name}: detail key {key} missing"
            );
        }
    }
}

/// Every update cell carries the per-mix QPS rows and rebuild-scope
/// counters the bench bin serializes.
#[test]
fn update_cells_report_churn_detail() {
    let pipelines = all_pipelines();
    let p = pipelines.iter().find(|p| p.name() == "update").unwrap();
    let sc = corpus()
        .into_iter()
        .find(|s| s.name == "multi_component/uniform")
        .unwrap();
    let rep = run_cell(&sc, p.as_ref()).unwrap_or_else(|e| panic!("cell failed: {e}"));
    for mix in update_mixes() {
        assert!(
            rep.detail.iter().any(|&(k, _)| k == mix.qps_key),
            "per-mix key {} missing",
            mix.qps_key
        );
    }
    for key in [
        "scoped_parts",
        "rebuilt_parts",
        "reused_parts",
        "fallbacks",
        "publish_us_total",
    ] {
        assert!(
            rep.detail.iter().any(|&(k, _)| k == key),
            "rebuild-scope key {key} missing"
        );
    }
}
