//! Stateful walk constraints (paper Definition 2) and the stock examples.

use twgraph::Arc;

/// Compact state identifier. Conventions: [`BOT`] (= 0) is the reject
/// state ⊥; [`NABLA`] (= 1) is the empty-walk state ▽; constraint-specific
/// states start at 2.
pub type StateId = u16;

/// The reject state ⊥ (condition 3: δ_e(⊥) = ⊥ for every e).
pub const BOT: StateId = 0;
/// The empty-walk state ▽ (condition 1: M(w) = ▽ iff w = φ).
pub const NABLA: StateId = 1;

/// A stateful walk constraint: the tuple (Q, M, δ) of Definition 2,
/// presented operationally. `M` is implicit: the state of a walk is
/// obtained by folding [`transition`](StatefulConstraint::transition) from
/// [`NABLA`]; a walk is in `C` iff its state is not [`BOT`].
pub trait StatefulConstraint {
    /// |Q|, including ⊥ and ▽. States are `0..n_states()`.
    fn n_states(&self) -> usize;

    /// δ_e(q): the state after appending arc `e` to a walk in state `q`.
    /// Implementations must satisfy `transition(e, BOT) == BOT`.
    fn transition(&self, arc: &Arc, q: StateId) -> StateId;

    /// The state of a whole walk (the paper's M), folded from ▽.
    fn walk_state(&self, arcs: &[Arc]) -> StateId {
        arcs.iter().fold(NABLA, |q, a| self.transition(a, q))
    }

    /// Human-readable state name for traces and the Fig. 3 demo.
    fn state_name(&self, q: StateId) -> String {
        match q {
            BOT => "⊥".into(),
            NABLA => "▽".into(),
            other => format!("q{other}"),
        }
    }
}

/// Example 1: c-colored walks — no two consecutive edges share a color.
/// Edge colors live in `Arc::label` (must be < `colors`).
/// Q = {⊥, ▽} ∪ colors; |Q| = colors + 2.
#[derive(Clone, Copy, Debug)]
pub struct ColoredWalk {
    /// Palette size c.
    pub colors: u32,
}

impl StatefulConstraint for ColoredWalk {
    fn n_states(&self) -> usize {
        self.colors as usize + 2
    }

    fn transition(&self, arc: &Arc, q: StateId) -> StateId {
        debug_assert!(arc.label < self.colors, "color out of palette");
        let color_state = (arc.label + 2) as StateId;
        match q {
            BOT => BOT,
            NABLA => color_state,
            last => {
                if last == color_state {
                    BOT
                } else {
                    color_state
                }
            }
        }
    }

    fn state_name(&self, q: StateId) -> String {
        match q {
            BOT => "⊥".into(),
            NABLA => "▽".into(),
            c => format!("col{}", c - 2),
        }
    }
}

/// Example 2: count-c walks — at most `c` edges labeled 1 (labels are
/// 0/1 in `Arc::label`). Q = {⊥, ▽} ∪ {0..=c}; |Q| = c + 3.
/// The *exact*-count subset C(c) is selected at decode time by asking for
/// final state `count_state(c)`.
#[derive(Clone, Copy, Debug)]
pub struct CountWalk {
    /// The budget c.
    pub c: u32,
}

impl CountWalk {
    /// The state id meaning "count = k so far".
    pub fn count_state(&self, k: u32) -> StateId {
        debug_assert!(k <= self.c);
        (k + 2) as StateId
    }
}

impl StatefulConstraint for CountWalk {
    fn n_states(&self) -> usize {
        self.c as usize + 3
    }

    fn transition(&self, arc: &Arc, q: StateId) -> StateId {
        debug_assert!(arc.label <= 1, "count labels are 0/1");
        match q {
            BOT => BOT,
            NABLA => {
                if arc.label > self.c {
                    BOT
                } else {
                    self.count_state(arc.label)
                }
            }
            k => {
                let count = (k - 2) as u32 + arc.label;
                if count > self.c {
                    BOT
                } else {
                    self.count_state(count)
                }
            }
        }
    }

    fn state_name(&self, q: StateId) -> String {
        match q {
            BOT => "⊥".into(),
            NABLA => "▽".into(),
            k => format!("cnt{}", k - 2),
        }
    }
}

/// Extension: parity of label-1 edges. Q = {⊥, ▽, even, odd}. Walks are
/// never rejected; parity is read from the final state. Exercises
/// constraints whose state set never hits ⊥.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParityWalk;

impl ParityWalk {
    /// State "even number of 1-labels so far".
    pub const EVEN: StateId = 2;
    /// State "odd number of 1-labels so far".
    pub const ODD: StateId = 3;
}

impl StatefulConstraint for ParityWalk {
    fn n_states(&self) -> usize {
        4
    }

    fn transition(&self, arc: &Arc, q: StateId) -> StateId {
        let bit = (arc.label & 1) as StateId;
        match q {
            BOT => BOT,
            NABLA => Self::EVEN + bit,
            s => {
                let cur = s - Self::EVEN;
                Self::EVEN + (cur ^ bit)
            }
        }
    }
}

/// Extension: forbidden label transitions — a walk may not traverse an
/// edge labeled `b` immediately after one labeled `a` for any forbidden
/// pair `(a, b)`. Generalizes [`ColoredWalk`] (forbid all (a, a)).
#[derive(Clone, Debug)]
pub struct ForbiddenTransitionWalk {
    /// Number of labels.
    pub labels: u32,
    /// Forbidden ordered pairs (a, b).
    pub forbidden: Vec<(u32, u32)>,
}

impl StatefulConstraint for ForbiddenTransitionWalk {
    fn n_states(&self) -> usize {
        self.labels as usize + 2
    }

    fn transition(&self, arc: &Arc, q: StateId) -> StateId {
        debug_assert!(arc.label < self.labels);
        let next = (arc.label + 2) as StateId;
        match q {
            BOT => BOT,
            NABLA => next,
            last => {
                let prev = (last - 2) as u32;
                if self.forbidden.contains(&(prev, arc.label)) {
                    BOT
                } else {
                    next
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::UEdgeId;

    fn arc(label: u32) -> Arc {
        Arc {
            src: 0,
            dst: 0,
            weight: 1,
            label,
            uedge: UEdgeId::NONE,
        }
    }

    #[test]
    fn colored_rejects_monochromatic_pairs() {
        let c = ColoredWalk { colors: 3 };
        assert_eq!(c.walk_state(&[arc(0), arc(1), arc(0)]), 2); // ends color 0
        assert_eq!(c.walk_state(&[arc(0), arc(0)]), BOT);
        assert_eq!(c.walk_state(&[]), NABLA);
        // ⊥ absorbs (condition 3).
        assert_eq!(c.transition(&arc(2), BOT), BOT);
    }

    #[test]
    fn count_budget_enforced() {
        let c = CountWalk { c: 2 };
        assert_eq!(c.walk_state(&[arc(1), arc(0), arc(1)]), c.count_state(2));
        assert_eq!(c.walk_state(&[arc(1), arc(1), arc(1)]), BOT);
        assert_eq!(c.walk_state(&[arc(0), arc(0)]), c.count_state(0));
    }

    #[test]
    fn count_zero_budget() {
        let c = CountWalk { c: 0 };
        assert_eq!(c.walk_state(&[arc(0), arc(0)]), c.count_state(0));
        assert_eq!(c.walk_state(&[arc(1)]), BOT);
    }

    #[test]
    fn parity_tracks_mod_two() {
        let p = ParityWalk;
        assert_eq!(p.walk_state(&[arc(1), arc(0), arc(1)]), ParityWalk::EVEN);
        assert_eq!(p.walk_state(&[arc(1), arc(0)]), ParityWalk::ODD);
        assert_eq!(p.walk_state(&[arc(0)]), ParityWalk::EVEN);
    }

    #[test]
    fn forbidden_transitions() {
        let f = ForbiddenTransitionWalk {
            labels: 3,
            forbidden: vec![(0, 1), (2, 2)],
        };
        assert_eq!(f.walk_state(&[arc(0), arc(1)]), BOT);
        assert_ne!(f.walk_state(&[arc(1), arc(0)]), BOT);
        assert_eq!(f.walk_state(&[arc(2), arc(2)]), BOT);
    }

    #[test]
    fn colored_equals_forbidden_diagonal() {
        let c = ColoredWalk { colors: 2 };
        let f = ForbiddenTransitionWalk {
            labels: 2,
            forbidden: vec![(0, 0), (1, 1)],
        };
        for seq in [
            vec![0u32, 1, 0, 1],
            vec![0, 0],
            vec![1, 0, 0],
            vec![],
            vec![1],
        ] {
            let arcs: Vec<Arc> = seq.iter().map(|&l| arc(l)).collect();
            assert_eq!(
                c.walk_state(&arcs) == BOT,
                f.walk_state(&arcs) == BOT,
                "disagreement on {seq:?}"
            );
        }
    }
}
