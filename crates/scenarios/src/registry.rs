//! The scenario registry: named, seeded graph families with declared
//! treewidth bounds and weight models.

use twgraph::gen;
use twgraph::{Dist, MultiDigraph, UGraph};

/// A graph family with its structural parameters.
#[derive(Clone, Copy, Debug)]
pub enum Family {
    /// Random connected partial k-tree (treewidth ≤ k).
    PartialKtree { n: usize, k: usize, keep: f64 },
    /// k-banded path (treewidth k, diameter Θ(n/k)).
    BandedPath { n: usize, k: usize },
    /// rows × cols grid (treewidth min(rows, cols)).
    Grid { rows: usize, cols: usize },
    /// Uniform random recursive tree (treewidth 1).
    RandomTree { n: usize },
    /// Random 2-terminal series-parallel graph (treewidth ≤ 2).
    SeriesParallel { n: usize },
    /// Random cactus — every edge on ≤ 1 cycle (treewidth ≤ 2).
    Cactus { n: usize },
    /// Random Halin graph — degree-≥3 tree + leaf cycle (treewidth ≤ 3).
    Halin { n: usize },
    /// Ring of `cliques` cliques of `size` vertices each
    /// (treewidth in [size − 1, size + 1]).
    RingOfCliques { cliques: usize, size: usize },
    /// Disconnected mixed-family union incl. an isolated vertex
    /// (component-wise treewidth ≤ 2).
    MultiComponent { n: usize },
    /// Erdős–Rényi G(n, p) — the unstructured control (treewidth
    /// typically Θ(n)).
    Gnp { n: usize, p: f64 },
}

impl Family {
    /// Build the communication graph for this family under `seed`.
    pub fn graph(&self, seed: u64) -> UGraph {
        match *self {
            Family::PartialKtree { n, k, keep } => gen::partial_ktree(n, k, keep, seed),
            Family::BandedPath { n, k } => gen::banded_path(n, k),
            Family::Grid { rows, cols } => gen::grid(rows, cols),
            Family::RandomTree { n } => gen::random_tree(n, seed),
            Family::SeriesParallel { n } => gen::series_parallel(n, seed),
            Family::Cactus { n } => gen::cactus(n, seed),
            Family::Halin { n } => gen::halin(n, seed),
            Family::RingOfCliques { cliques, size } => gen::ring_of_cliques(cliques, size),
            Family::MultiComponent { n } => gen::multi_component(n, seed),
            Family::Gnp { n, p } => gen::gnp(n, p, seed),
        }
    }

    /// Short family tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Family::PartialKtree { .. } => "partial_ktree",
            Family::BandedPath { .. } => "banded_path",
            Family::Grid { .. } => "grid",
            Family::RandomTree { .. } => "random_tree",
            Family::SeriesParallel { .. } => "series_parallel",
            Family::Cactus { .. } => "cactus",
            Family::Halin { .. } => "halin",
            Family::RingOfCliques { .. } => "ring_of_cliques",
            Family::MultiComponent { .. } => "multi_component",
            Family::Gnp { .. } => "gnp",
        }
    }
}

/// How edge weights are drawn for the weighted instance.
#[derive(Clone, Copy, Debug)]
pub enum WeightModel {
    /// All weights 1.
    Unit,
    /// Independent uniform weights in `[1, wmax]`.
    Uniform { wmax: Dist },
    /// Discrete Pareto weights with tail exponent `alpha`, truncated at
    /// `wmax` (see [`gen::with_heavy_tailed_weights`]).
    HeavyTailed { wmax: Dist, alpha: f64 },
}

impl WeightModel {
    /// Tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            WeightModel::Unit => "unit",
            WeightModel::Uniform { .. } => "uniform",
            WeightModel::HeavyTailed { .. } => "heavy_tailed",
        }
    }
}

/// One named workload: a seeded family, a weight model, and the declared
/// width bounds every run is checked against.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Registry name (unique; used in reports and golden files).
    pub name: &'static str,
    /// The graph family.
    pub family: Family,
    /// The weight model of the weighted instance.
    pub weights: WeightModel,
    /// Seed driving both the family and the weight draw (streams are
    /// decorrelated by the `twgraph::gen` seed-derivation rule).
    pub seed: u64,
    /// Declared treewidth upper bound from family theory (`None` for the
    /// unbounded control family).
    pub tw_bound: Option<usize>,
    /// Declared upper bound on the *min-degree elimination width* — what
    /// the repo's heuristic checker can actually certify. Always
    /// ≥ `tw_bound` where both are present (the heuristic may overshoot
    /// the true treewidth, e.g. by one on Halin graphs).
    pub elim_bound: Option<usize>,
    /// Initial width guess `t0` handed to the decomposition.
    pub t0: u64,
}

impl Scenario {
    /// The communication graph.
    pub fn graph(&self) -> UGraph {
        self.family.graph(self.seed)
    }

    /// The weighted (symmetrized, undirected) instance.
    pub fn instance(&self) -> MultiDigraph {
        let g = self.graph();
        match self.weights {
            WeightModel::Unit => gen::with_unit_weights(&g),
            WeightModel::Uniform { wmax } => gen::with_random_weights(&g, wmax, self.seed),
            WeightModel::HeavyTailed { wmax, alpha } => {
                gen::with_heavy_tailed_weights(&g, wmax, alpha, self.seed)
            }
        }
    }

    /// The edge-colored instance driving the stateful-walk pipeline
    /// (`colors` uniform colors; weights follow the scenario's `wmax`
    /// scale, uniformly drawn).
    pub fn colored_instance(&self, colors: u32) -> MultiDigraph {
        let g = self.graph();
        let wmax = match self.weights {
            WeightModel::Unit => 1,
            WeightModel::Uniform { wmax } => wmax,
            WeightModel::HeavyTailed { wmax, .. } => wmax.min(64),
        };
        gen::with_colored_weights(&g, wmax, colors, self.seed)
    }
}

/// The scenario corpus: every registered workload, exercising all five new
/// families, the legacy families, all three weight models, and the
/// disconnected + unbounded-treewidth controls.
pub fn corpus() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "series_parallel/uniform",
            family: Family::SeriesParallel { n: 44 },
            weights: WeightModel::Uniform { wmax: 12 },
            seed: 1,
            tw_bound: Some(2),
            elim_bound: Some(2),
            t0: 3,
        },
        Scenario {
            name: "cactus/uniform",
            family: Family::Cactus { n: 40 },
            weights: WeightModel::Uniform { wmax: 9 },
            seed: 2,
            tw_bound: Some(2),
            elim_bound: Some(2),
            t0: 3,
        },
        Scenario {
            name: "halin/unit",
            family: Family::Halin { n: 36 },
            weights: WeightModel::Unit,
            seed: 3,
            tw_bound: Some(3),
            elim_bound: Some(4),
            t0: 4,
        },
        Scenario {
            name: "ring_of_cliques/c4_uniform",
            family: Family::RingOfCliques {
                cliques: 8,
                size: 4,
            },
            weights: WeightModel::Uniform { wmax: 20 },
            seed: 4,
            tw_bound: Some(5),
            elim_bound: Some(5),
            t0: 5,
        },
        Scenario {
            name: "ring_of_cliques/c6_heavy",
            family: Family::RingOfCliques {
                cliques: 5,
                size: 6,
            },
            weights: WeightModel::HeavyTailed {
                wmax: 1_000,
                alpha: 1.2,
            },
            seed: 5,
            tw_bound: Some(7),
            elim_bound: Some(7),
            t0: 7,
        },
        Scenario {
            name: "multi_component/uniform",
            family: Family::MultiComponent { n: 44 },
            weights: WeightModel::Uniform { wmax: 15 },
            seed: 6,
            tw_bound: Some(2),
            elim_bound: Some(2),
            t0: 3,
        },
        Scenario {
            name: "partial_ktree/heavy",
            family: Family::PartialKtree {
                n: 44,
                k: 3,
                keep: 0.7,
            },
            weights: WeightModel::HeavyTailed {
                wmax: 500,
                alpha: 1.1,
            },
            seed: 7,
            tw_bound: Some(3),
            elim_bound: Some(3),
            t0: 4,
        },
        Scenario {
            name: "partial_ktree/uniform",
            family: Family::PartialKtree {
                n: 52,
                k: 2,
                keep: 0.7,
            },
            weights: WeightModel::Uniform { wmax: 30 },
            seed: 8,
            tw_bound: Some(2),
            elim_bound: Some(2),
            t0: 3,
        },
        Scenario {
            name: "banded_path/uniform",
            family: Family::BandedPath { n: 48, k: 3 },
            weights: WeightModel::Uniform { wmax: 10 },
            seed: 9,
            tw_bound: Some(3),
            elim_bound: Some(3),
            t0: 4,
        },
        Scenario {
            name: "grid/unit",
            family: Family::Grid { rows: 5, cols: 8 },
            weights: WeightModel::Unit,
            seed: 10,
            tw_bound: Some(6),
            elim_bound: Some(8),
            t0: 7,
        },
        Scenario {
            name: "random_tree/uniform",
            family: Family::RandomTree { n: 56 },
            weights: WeightModel::Uniform { wmax: 25 },
            seed: 11,
            tw_bound: Some(1),
            elim_bound: Some(1),
            t0: 2,
        },
        Scenario {
            name: "gnp/control",
            family: Family::Gnp { n: 30, p: 0.14 },
            weights: WeightModel::Uniform { wmax: 8 },
            seed: 12,
            tw_bound: None,
            elim_bound: None,
            t0: 4,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::tw::{elimination_width, min_degree_order};

    #[test]
    fn corpus_names_unique_and_nonempty() {
        let c = corpus();
        assert!(c.len() >= 12);
        let mut names: Vec<_> = c.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len(), "duplicate scenario names");
    }

    #[test]
    fn declared_elim_bounds_hold() {
        for sc in corpus() {
            let g = sc.graph();
            if let Some(bound) = sc.elim_bound {
                let w = elimination_width(&g, &min_degree_order(&g));
                assert!(
                    w <= bound,
                    "{}: elimination width {w} exceeds declared bound {bound}",
                    sc.name
                );
            }
            if let (Some(tw), Some(elim)) = (sc.tw_bound, sc.elim_bound) {
                assert!(tw <= elim, "{}: tw bound above elim bound", sc.name);
            }
        }
    }

    #[test]
    fn instances_match_graphs_and_weights() {
        for sc in corpus() {
            let g = sc.graph();
            let inst = sc.instance();
            assert_eq!(inst.comm_graph(), g, "{}", sc.name);
            assert!(inst.arcs().iter().all(|a| a.weight >= 1), "{}", sc.name);
            if matches!(sc.weights, WeightModel::Unit) {
                assert!(inst.arcs().iter().all(|a| a.weight == 1), "{}", sc.name);
            }
            let colored = sc.colored_instance(2);
            assert_eq!(colored.comm_graph(), g, "{}", sc.name);
            assert!(colored.arcs().iter().all(|a| a.label < 2), "{}", sc.name);
        }
    }
}
