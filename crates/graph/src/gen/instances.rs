//! Decorators turning bare communication graphs into problem instances.
//!
//! All seeded decorators draw their randomness through
//! [`derive_rng`](super::derive_rng) — see the seed-derivation rule in the
//! [module docs](super).

use super::derive_rng;
use crate::multidigraph::MultiDigraph;
use crate::ugraph::UGraph;
use crate::Dist;
use rand::Rng;

/// Undirected weighted instance: every edge of `g` gets an independent
/// uniform weight in `[1, wmax]` (twin arcs share the weight).
pub fn with_random_weights(g: &UGraph, wmax: Dist, seed: u64) -> MultiDigraph {
    assert!(wmax >= 1);
    let mut rng = derive_rng("uniform_weights", &[g.n() as u64, wmax], seed);
    MultiDigraph::from_undirected(
        g.n(),
        g.edges().map(|(u, v)| (u, v, rng.gen_range(1..=wmax))),
    )
}

/// Undirected instance with heavy-tailed (discrete Pareto) weights: each
/// edge draws `w = min(wmax, ⌊u^{−1/α}⌋)` for `u` uniform in (0, 1] — a
/// power-law tail `P[w ≥ x] ≈ x^{−α}` truncated at `wmax`. Small `α`
/// (e.g. 1.1) yields occasional near-`wmax` outliers among unit-ish
/// weights, the regime that stresses weighted-distance pipelines.
pub fn with_heavy_tailed_weights(g: &UGraph, wmax: Dist, alpha: f64, seed: u64) -> MultiDigraph {
    assert!(wmax >= 1 && alpha > 0.0);
    let mut rng = derive_rng(
        "heavy_tailed_weights",
        &[g.n() as u64, wmax, alpha.to_bits()],
        seed,
    );
    MultiDigraph::from_undirected(
        g.n(),
        g.edges().map(|(u, v)| {
            let u01: f64 = 1.0 - rng.gen_range(0.0..1.0); // (0, 1]
            let w = u01.powf(-1.0 / alpha).floor() as u64;
            (u, v, w.clamp(1, wmax))
        }),
    )
}

/// Undirected weighted instance with uniform random edge colors in
/// `[0, colors)` — the workload of the stateful-walk (CDL) pipelines.
/// Twin arcs share both weight and color.
pub fn with_colored_weights(g: &UGraph, wmax: Dist, colors: u32, seed: u64) -> MultiDigraph {
    assert!(wmax >= 1 && colors >= 1);
    let mut rng = derive_rng(
        "colored_weights",
        &[g.n() as u64, wmax, u64::from(colors)],
        seed,
    );
    MultiDigraph::from_undirected_labeled(
        g.n(),
        g.edges()
            .map(|(u, v)| (u, v, rng.gen_range(1..=wmax), rng.gen_range(0..colors))),
    )
}

/// Undirected unit-weight instance.
pub fn with_unit_weights(g: &UGraph) -> MultiDigraph {
    MultiDigraph::from_undirected(g.n(), g.edges().map(|(u, v)| (u, v, 1)))
}

/// Directed weighted instance over the topology of `g`: each undirected edge
/// independently becomes a forward arc, a backward arc, or both (probability
/// `both_prob` for both, else a fair coin for the direction), with uniform
/// weights in `[1, wmax]`. The communication graph of the result is `g`
/// itself — exactly the paper's setting where orientation does not affect
/// communication (§2.1).
pub fn random_orientation(g: &UGraph, wmax: Dist, both_prob: f64, seed: u64) -> MultiDigraph {
    assert!(wmax >= 1);
    let mut rng = derive_rng(
        "random_orientation",
        &[g.n() as u64, wmax, both_prob.to_bits()],
        seed,
    );
    let mut arcs = Vec::new();
    for (u, v) in g.edges() {
        let w = rng.gen_range(1..=wmax);
        if rng.gen_bool(both_prob) {
            arcs.push(crate::Arc::new(u, v, w));
            arcs.push(crate::Arc::new(v, u, rng.gen_range(1..=wmax)));
        } else if rng.gen_bool(0.5) {
            arcs.push(crate::Arc::new(u, v, w));
        } else {
            arcs.push(crate::Arc::new(v, u, w));
        }
    }
    MultiDigraph::from_arcs(g.n(), arcs)
}

/// A bipartite matching instance: unweighted undirected graph plus the side
/// assignment (`true` = left).
#[derive(Clone, Debug)]
pub struct BipartiteInstance {
    /// The (simple, undirected) graph.
    pub graph: UGraph,
    /// `side[v] == true` iff `v` is a left vertex.
    pub side: Vec<bool>,
}

impl BipartiteInstance {
    /// Build from parts produced by [`crate::gen::bipartite_banded`].
    pub fn new(graph: UGraph, side: Vec<bool>) -> Self {
        assert_eq!(graph.n(), side.len());
        debug_assert!(
            graph
                .edges()
                .all(|(u, v)| side[u as usize] != side[v as usize]),
            "instance is not bipartite"
        );
        BipartiteInstance { graph, side }
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.side.iter().filter(|&&s| s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{bipartite_banded, cycle};

    #[test]
    fn weights_in_range_and_twinned() {
        let g = cycle(10);
        let inst = with_random_weights(&g, 9, 4);
        assert_eq!(inst.n_arcs(), 20);
        for a in inst.arcs() {
            assert!((1..=9).contains(&a.weight));
        }
        // Twin arcs (same uedge) share weights.
        for e in 0..inst.n_uedges() as u32 {
            let twins: Vec<_> = inst.arcs().iter().filter(|a| a.uedge.0 == e).collect();
            assert_eq!(twins.len(), 2);
            assert_eq!(twins[0].weight, twins[1].weight);
        }
    }

    #[test]
    fn orientation_preserves_comm_graph() {
        let g = cycle(12);
        let inst = random_orientation(&g, 5, 0.3, 99);
        assert_eq!(inst.comm_graph(), g);
    }

    #[test]
    fn unit_weights() {
        let g = cycle(5);
        let inst = with_unit_weights(&g);
        assert!(inst.arcs().iter().all(|a| a.weight == 1));
    }

    #[test]
    fn bipartite_instance_counts() {
        let (g, side) = bipartite_banded(8, 6, 2, 0.7, 1);
        let inst = BipartiteInstance::new(g, side);
        assert_eq!(inst.n_left(), 8);
    }

    #[test]
    fn heavy_tailed_weights_in_range_with_outliers() {
        let g = crate::gen::grid(12, 12);
        let inst = with_heavy_tailed_weights(&g, 1_000, 1.1, 3);
        let weights: Vec<u64> = inst.arcs().iter().map(|a| a.weight).collect();
        assert!(weights.iter().all(|&w| (1..=1_000).contains(&w)));
        let ones = weights.iter().filter(|&&w| w == 1).count();
        let big = weights.iter().filter(|&&w| w >= 50).count();
        // The tail: mostly small weights, but genuine outliers present.
        assert!(ones * 2 > weights.len(), "bulk should be unit-ish");
        assert!(big > 0, "no heavy outlier drawn");
    }

    #[test]
    fn colored_weights_share_twin_color() {
        let g = cycle(14);
        let inst = with_colored_weights(&g, 9, 3, 5);
        for e in 0..inst.n_uedges() as u32 {
            let twins: Vec<_> = inst.arcs().iter().filter(|a| a.uedge.0 == e).collect();
            assert_eq!(twins.len(), 2);
            assert_eq!(twins[0].label, twins[1].label);
            assert_eq!(twins[0].weight, twins[1].weight);
            assert!(twins[0].label < 3);
        }
    }
}
