//! Directed weighted girth from a distance labeling (paper §7, first
//! paragraph): exchange labels across every edge, decode the back
//! distance locally, aggregate the global min.

use congest_sim::{CongestError, Network};
use distlabel::label::{decode, Label};
use subgraph_ops::global::build_global_tree;
use subgraph_ops::{pa, Parts};
use twgraph::{dist_add, Dist, MultiDigraph, INF};

/// Centralized evaluation given the labels (decoder calls only).
pub fn girth_directed_from_labels(inst: &MultiDigraph, labels: &[Label]) -> Dist {
    let mut best = INF;
    for a in inst.arcs() {
        if a.src == a.dst {
            best = best.min(a.weight);
            continue;
        }
        let back = decode(&labels[a.dst as usize], &labels[a.src as usize]);
        best = best.min(dist_add(a.weight, back));
    }
    best
}

/// Distributed evaluation: every node ships its label to each neighbour
/// (one superstep whose cost is the label size — the Õ(τ²·log n)-word
/// payload), decodes the shortest cycle through each incident arc, then a
/// global min aggregation over the BFS backbone. Returns `(girth, rounds)`.
pub fn girth_directed_distributed(
    net: &mut Network,
    inst: &MultiDigraph,
    labels: &[Label],
) -> Result<(Dist, u64), CongestError> {
    let n = inst.n();
    assert_eq!(net.n(), n);
    let start = net.metrics().rounds;
    let g = net.graph_handle();

    // One SNC carrying whole labels: per neighbour the (target, to, from)
    // entries — 3 words each.
    let labels_ref = labels;
    let mut got: Vec<Vec<(u32, Label)>> = vec![Vec::new(); n];
    net.superstep(
        &mut got,
        |u, _s| {
            let entries: Vec<(u32, Dist, Dist)> = labels_ref[u as usize].entries.clone();
            g.neighbors(u)
                .iter()
                .map(|&v| (v, entries.clone()))
                .collect()
        },
        |v, s, inbox| {
            for (src, entries) in inbox {
                let mut la = Label::new(src);
                for (t, to, from) in entries {
                    la.merge(t, to, from);
                }
                s.push((v, la));
            }
        },
    )?;
    // Local: best cycle through arcs leaving each node.
    let mut local_best = vec![INF; n];
    for a in inst.arcs() {
        if a.src == a.dst {
            local_best[a.src as usize] = local_best[a.src as usize].min(a.weight);
            continue;
        }
        // Node `src` received dst's label.
        if let Some((_, la_dst)) = got[a.src as usize]
            .iter()
            .find(|(owner, la)| *owner == a.src && la.owner == a.dst)
        {
            let back = decode(la_dst, &labels[a.src as usize]);
            local_best[a.src as usize] = local_best[a.src as usize].min(dist_add(a.weight, back));
        }
    }
    // Global min over the backbone.
    let gtree = build_global_tree(net)?;
    let parts = Parts::from_labels(&vec![Some(0u32); n]);
    let roles = pa::steiner_roles(&gtree, &parts);
    let up = pa::aggregate(net, &roles, |v, _p| Some(local_best[v as usize]), Dist::min)?;
    let girth = up.roots.first().map_or(INF, |&(_, d)| d);
    let rounds = net.metrics().rounds - start;
    net.snapshot("girth/directed");
    Ok((girth, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::girth_directed_centralized;
    use congest_sim::NetworkConfig;
    use distlabel::build_labels_centralized;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treedec::{decompose_centralized, SepConfig};
    use twgraph::gen::{banded_path, ktree, random_orientation};

    fn labels_for(inst: &MultiDigraph, seed: u64) -> Vec<Label> {
        let g = inst.comm_graph();
        let cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let dec = decompose_centralized(&g, 3, &cfg, &mut rng).unwrap();
        build_labels_centralized(inst, &dec.td, &dec.info)
    }

    #[test]
    fn matches_oracle_on_random_orientations() {
        for seed in 0..4 {
            let g = banded_path(40, 2);
            let inst = random_orientation(&g, 9, 0.5, seed);
            let labels = labels_for(&inst, seed + 100);
            let got = girth_directed_from_labels(&inst, &labels);
            let want = girth_directed_centralized(&inst);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn distributed_agrees_and_charges() {
        let g = ktree(36, 2, 5);
        let inst = random_orientation(&g, 7, 0.6, 3);
        let labels = labels_for(&inst, 9);
        let want = girth_directed_centralized(&inst);
        let mut net = Network::new(g, NetworkConfig::default());
        let (got, rounds) = girth_directed_distributed(&mut net, &inst, &labels).unwrap();
        assert_eq!(got, want);
        assert!(rounds > 0);
    }

    #[test]
    fn acyclic_reports_inf() {
        // Orient a path strictly forward: no directed cycle.
        let arcs: Vec<twgraph::Arc> = (0..19u32).map(|i| twgraph::Arc::new(i, i + 1, 1)).collect();
        let inst = MultiDigraph::from_arcs(20, arcs);
        let labels = labels_for(&inst, 11);
        assert_eq!(girth_directed_from_labels(&inst, &labels), INF);
    }
}
