//! Connected components of undirected graphs.

use crate::ugraph::UGraph;
use std::collections::VecDeque;

/// Component id per vertex, numbered 0.. in order of discovery, plus the
/// number of components.
pub fn components(g: &UGraph) -> (Vec<u32>, usize) {
    let mut comp = vec![u32::MAX; g.n()];
    let mut next = 0u32;
    let mut q = VecDeque::new();
    for s in g.vertices() {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = next;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    q.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Whether the graph is connected (vacuously true for n ≤ 1).
pub fn is_connected(g: &UGraph) -> bool {
    g.n() <= 1 || components(g).1 == 1
}

/// Index of the largest component by a vertex measure `mu` (ties broken by
/// lower component id), together with per-component measure totals.
///
/// `mu[v]` is the weight each vertex contributes — the paper's µ_X measure
/// (§3.1) uses `mu[v] = 1` iff `v ∈ X`.
pub fn largest_component(comp: &[u32], n_comp: usize, mu: &[u64]) -> (usize, Vec<u64>) {
    let mut totals = vec![0u64; n_comp];
    for (v, &c) in comp.iter().enumerate() {
        totals[c as usize] += mu[v];
    }
    let best = (0..n_comp)
        .max_by_key(|&c| (totals[c], usize::MAX - c))
        .unwrap_or(0);
    (best, totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UGraph;

    #[test]
    fn two_components() {
        let g = UGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let (comp, k) = components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_cycle() {
        let g = UGraph::from_edges(4, (0..4u32).map(|i| (i, (i + 1) % 4)));
        assert!(is_connected(&g));
    }

    #[test]
    fn largest_by_measure() {
        let g = UGraph::from_edges(5, [(0, 1), (2, 3)]);
        let (comp, k) = components(&g);
        // Uniform measure: component {0,1} and {2,3} tie at 2, isolated 4 has 1.
        let (big, totals) = largest_component(&comp, k, &[1; 5]);
        assert_eq!(totals.iter().sum::<u64>(), 5);
        assert_eq!(totals[big], 2);
        // Skewed measure puts all the mass on vertex 4.
        let (big2, _) = largest_component(&comp, k, &[0, 0, 0, 0, 10]);
        assert_eq!(big2 as u32, comp[4]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_connected(&UGraph::empty(0)));
        assert!(is_connected(&UGraph::empty(1)));
        assert!(!is_connected(&UGraph::empty(2)));
    }
}
