//! Bipartite matching baselines: centralized Hopcroft–Karp (the oracle)
//! and a distributed augmenting-path algorithm in the Õ(s_max)-round
//! spirit of \[AKO18\].

use congest_sim::{CongestError, Network};
use std::collections::VecDeque;
use twgraph::UGraph;

/// Maximum bipartite matching (Hopcroft–Karp). Returns `mate[v]`.
pub fn hopcroft_karp(g: &UGraph, side: &[bool]) -> Vec<Option<u32>> {
    let n = g.n();
    let mut mate: Vec<Option<u32>> = vec![None; n];
    let lefts: Vec<u32> = (0..n as u32).filter(|&v| side[v as usize]).collect();
    loop {
        // BFS layering from free left vertices.
        let mut layer = vec![u32::MAX; n];
        let mut q = VecDeque::new();
        for &l in &lefts {
            if mate[l as usize].is_none() {
                layer[l as usize] = 0;
                q.push_back(l);
            }
        }
        let mut found_free_right = false;
        while let Some(u) = q.pop_front() {
            for &r in g.neighbors(u) {
                match mate[r as usize] {
                    None => found_free_right = true,
                    Some(next_l) => {
                        if layer[next_l as usize] == u32::MAX {
                            layer[next_l as usize] = layer[u as usize] + 1;
                            q.push_back(next_l);
                        }
                    }
                }
            }
        }
        if !found_free_right {
            break;
        }
        // DFS phase: vertex-disjoint shortest augmenting paths.
        fn try_augment(g: &UGraph, u: u32, mate: &mut [Option<u32>], layer: &mut [u32]) -> bool {
            for i in 0..g.neighbors(u).len() {
                let r = g.neighbors(u)[i];
                match mate[r as usize] {
                    None => {
                        mate[r as usize] = Some(u);
                        mate[u as usize] = Some(r);
                        return true;
                    }
                    Some(next_l) => {
                        if layer[next_l as usize] == layer[u as usize] + 1
                            && try_augment(g, next_l, mate, layer)
                        {
                            mate[r as usize] = Some(u);
                            mate[u as usize] = Some(r);
                            return true;
                        }
                    }
                }
            }
            layer[u as usize] = u32::MAX; // dead end
            false
        }
        let mut progressed = false;
        for &l in &lefts {
            if mate[l as usize].is_none() && layer[l as usize] == 0 {
                progressed |= try_augment(g, l, &mut mate, &mut layer);
            }
        }
        if !progressed {
            break;
        }
    }
    mate
}

/// Cardinality of a matching given as `mate[]`.
pub fn matching_size(mate: &[Option<u32>]) -> usize {
    mate.iter().flatten().count() / 2
}

#[derive(Clone)]
struct MState {
    mate: Option<u32>,
    /// Alternating-BFS parent (the right vertex that reached this left
    /// vertex through a matched edge), per phase.
    parent: Option<u32>,
    layered: bool,
    fresh: bool,
    /// Free-right hit discovered this phase (right side only).
    reached_free: bool,
}

/// Distributed augmenting-path matching: phases of alternating BFS from
/// all free left vertices; one vertex-disjoint augmenting path set is
/// flipped per phase (greedy, id-priority). O(s_max) phases, each costing
/// O(path length) supersteps — the Õ(s_max)-round flavour of \[AKO18\],
/// measured honestly. Returns `(mate, rounds)`.
pub fn matching_distributed_baseline(
    net: &mut Network,
    g: &UGraph,
    side: &[bool],
) -> Result<(Vec<Option<u32>>, u64), CongestError> {
    let n = g.n();
    assert_eq!(net.n(), n);
    let start = net.metrics().rounds;
    let mut states: Vec<MState> = (0..n)
        .map(|_| MState {
            mate: None,
            parent: None,
            layered: false,
            fresh: false,
            reached_free: false,
        })
        .collect();

    // Each phase: (1) alternating BFS flood; (2) back-trace flips along a
    // greedily chosen disjoint set of augmenting paths. The orchestrator
    // only advances phases; all matching state lives at the nodes.
    let max_phases = n + 2;
    for _phase in 0..max_phases {
        // Reset BFS state (local).
        for (v, s) in states.iter_mut().enumerate() {
            s.parent = None;
            s.reached_free = false;
            s.layered = side[v] && s.mate.is_none();
            s.fresh = s.layered;
        }
        // Alternating BFS: left→right over unmatched edges (messages),
        // right→left over the matched edge (message to mate).
        let side_ref = side;
        net.run_until_quiet(
            &mut states,
            |u, s: &MState| {
                if !s.fresh {
                    return Vec::new();
                }
                if side_ref[u as usize] {
                    // Left: probe all neighbours except the mate.
                    g.neighbors(u)
                        .iter()
                        .copied()
                        .filter(|&r| s.mate != Some(r))
                        .map(|r| (r, 0u32))
                        .collect()
                } else {
                    // Right: matched rights forward to their mate.
                    s.mate.map(|l| (l, 1u32)).into_iter().collect()
                }
            },
            |v, s, inbox| {
                s.fresh = false;
                for (src, _tag) in inbox {
                    if side_ref[v as usize] {
                        // Left reached through its matched right neighbour.
                        if !s.layered && s.mate.is_some() {
                            s.layered = true;
                            s.parent = Some(src);
                            s.fresh = true;
                        }
                    } else {
                        // Right reached by a left probe.
                        if !s.layered {
                            s.layered = true;
                            s.parent = Some(src);
                            if s.mate.is_none() {
                                s.reached_free = true;
                            } else {
                                s.fresh = true;
                            }
                        }
                    }
                }
            },
            4 * n as u64 + 16,
        )?;
        // Collect free rights that were reached; flip greedily disjoint
        // paths (the back-walk is node-local chasing of parent pointers —
        // charge one round per hop by replaying it as messages).
        let mut hit: Vec<u32> = (0..n as u32)
            .filter(|&v| states[v as usize].reached_free)
            .collect();
        if hit.is_empty() {
            break;
        }
        hit.sort_unstable();
        let mut used = vec![false; n];
        let mut flips = 0u64;
        for &r0 in &hit {
            // Trace r0 ← left ← right ← … ← free left; skip if any vertex
            // already used this phase (vertex-disjointness).
            let mut path = vec![r0];
            let mut cur = r0;
            let mut ok = true;
            loop {
                let Some(p) = states[cur as usize].parent else {
                    ok = false;
                    break;
                };
                path.push(p);
                if side[p as usize] && states[p as usize].mate.is_none() {
                    break; // reached a free left vertex
                }
                let Some(p2) = states[p as usize].parent else {
                    ok = false;
                    break;
                };
                // p is a matched left; p2 is the right that reached it
                // through the matched edge... parent of left = the right
                // mate it was reached through; continue from that right's
                // probe parent.
                path.push(p2);
                cur = p2;
            }
            if !ok || path.iter().any(|&v| used[v as usize]) {
                continue;
            }
            for &v in &path {
                used[v as usize] = true;
            }
            // Flip: pair consecutive (right, left) along the path.
            let mut i = 0;
            while i + 1 < path.len() {
                let r = path[i];
                let l = path[i + 1];
                states[r as usize].mate = Some(l);
                states[l as usize].mate = Some(r);
                i += 2;
            }
            flips += path.len() as u64;
        }
        // Charge the back-walk traffic: one word per hop flipped.
        net.charge_rounds(flips.max(1));
    }

    Ok((
        states.into_iter().map(|s| s.mate).collect(),
        net.metrics().rounds - start,
    ))
}

/// Validity check: `mate` is a matching on `g` respecting bipartiteness.
pub fn is_valid_matching(g: &UGraph, side: &[bool], mate: &[Option<u32>]) -> bool {
    for v in 0..g.n() as u32 {
        if let Some(m) = mate[v as usize] {
            if mate[m as usize] != Some(v) {
                return false;
            }
            if !g.has_edge(v, m) {
                return false;
            }
            if side[v as usize] == side[m as usize] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::NetworkConfig;
    use twgraph::gen::bipartite_banded;

    #[test]
    fn hk_on_perfect_matchable() {
        // Complete bipartite K_{3,3}.
        let g = UGraph::from_edges(6, (0..3u32).flat_map(|l| (3..6u32).map(move |r| (l, r))));
        let side = vec![true, true, true, false, false, false];
        let mate = hopcroft_karp(&g, &side);
        assert_eq!(matching_size(&mate), 3);
        assert!(is_valid_matching(&g, &side, &mate));
    }

    #[test]
    fn hk_path_graph() {
        // Path l0-r0-l1-r1: maximum matching 2.
        let g = UGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let side = vec![true, false, true, false];
        let mate = hopcroft_karp(&g, &side);
        assert_eq!(matching_size(&mate), 2);
    }

    #[test]
    fn distributed_baseline_matches_hk_size() {
        for seed in 0..5 {
            let (g, side) = bipartite_banded(20, 20, 2, 0.6, seed);
            let truth = matching_size(&hopcroft_karp(&g, &side));
            let mut net = Network::new(g.clone(), NetworkConfig::default());
            let (mate, rounds) = matching_distributed_baseline(&mut net, &g, &side).unwrap();
            assert!(is_valid_matching(&g, &side, &mate), "seed {seed}");
            assert_eq!(matching_size(&mate), truth, "seed {seed}");
            assert!(rounds > 0);
        }
    }

    #[test]
    fn empty_graph() {
        let g = UGraph::empty(4);
        let side = vec![true, true, false, false];
        assert_eq!(matching_size(&hopcroft_karp(&g, &side)), 0);
    }

    #[test]
    fn star_takes_one() {
        let g = UGraph::from_edges(5, (1..5u32).map(|r| (0, r)));
        let side = vec![true, false, false, false, false];
        assert_eq!(matching_size(&hopcroft_karp(&g, &side)), 1);
    }
}
