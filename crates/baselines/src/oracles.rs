//! Uniform centralized oracle surface for differential runners.
//!
//! Every scenario × pipeline cell of the workload matrix (the `scenarios`
//! crate) is checked against exactly one function from this module, so the
//! trust anchor of the whole differential suite is enumerable in one place:
//!
//! | pipeline | oracle | algorithm |
//! |----------|--------|-----------|
//! | sssp | [`sssp_oracle`] | binary-heap Dijkstra |
//! | distance labeling | [`sssp_oracle`] per sampled source | Dijkstra |
//! | girth | [`girth_exact_centralized`](crate::girth_exact_centralized) / [`girth_directed_centralized`](crate::girth_directed_centralized) | per-edge shortest-cycle scan |
//! | matching | [`matching_oracle`] | Hopcroft–Karp |
//! | stateful walks | [`constrained_sssp_oracle`] | Dijkstra on the product graph |

use stateful_walks::{ConstrainedSssp, StateId, StatefulConstraint};
use twgraph::{Dist, MultiDigraph, UGraph};

/// Exact single-source distances (centralized Dijkstra) — the oracle for
/// the SSSP and distance-labeling pipelines. Unreachable vertices get
/// [`twgraph::INF`]; the instance may be disconnected.
pub fn sssp_oracle(inst: &MultiDigraph, src: u32) -> Vec<Dist> {
    twgraph::alg::dijkstra(inst, src).dist
}

/// Exact maximum-matching size of a bipartite instance (Hopcroft–Karp) —
/// the oracle for the matching pipeline. Handles disconnected inputs.
pub fn matching_oracle(g: &UGraph, side: &[bool]) -> usize {
    crate::matching_size(&crate::hopcroft_karp(g, side))
}

/// Exact constrained shortest-walk distances from `src` under constraint
/// `c`: `out[t][q]` is the weight of the shortest walk from `src` to `t`
/// whose final constraint state is `q` (Dijkstra on the explicit product
/// graph) — the oracle for the stateful-walk (CDL) pipeline.
pub fn constrained_sssp_oracle(
    inst: &MultiDigraph,
    c: &impl StatefulConstraint,
    src: u32,
) -> Vec<Vec<Dist>> {
    let sssp = ConstrainedSssp::run(inst, c, src);
    (0..inst.n() as u32)
        .map(|t| {
            (0..c.n_states() as StateId)
                .map(|q| sssp.dist(t, q))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateful_walks::ColoredWalk;
    use twgraph::gen;
    use twgraph::INF;

    #[test]
    fn sssp_oracle_disconnected_gives_inf() {
        let g = gen::disjoint_union(&[gen::cycle(4), gen::path(3)]);
        let inst = gen::with_unit_weights(&g);
        let d = sssp_oracle(&inst, 0);
        assert_eq!(d[2], 2);
        assert!(d[4] >= INF && d[6] >= INF);
    }

    #[test]
    fn matching_oracle_on_even_cycle() {
        let g = gen::cycle(8);
        let side: Vec<bool> = (0..8).map(|v| v % 2 == 0).collect();
        assert_eq!(matching_oracle(&g, &side), 4);
    }

    #[test]
    fn constrained_oracle_shape() {
        let inst = gen::with_colored_weights(&gen::cycle(6), 3, 2, 1);
        let c = ColoredWalk { colors: 2 };
        let out = constrained_sssp_oracle(&inst, &c, 0);
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|row| row.len() == c.n_states()));
    }
}
