//! The label data type and the decoder (paper Definition 1, Lemma 2).

use twgraph::{dist_add, Dist, INF};

/// Distance label of one vertex: exact distances to/from its ancestor-bag
/// vertices `B↑(u)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Label {
    /// The label's owner.
    pub owner: u32,
    /// Sorted by target: `(target s, d(owner → s), d(s → owner))`.
    pub entries: Vec<(u32, Dist, Dist)>,
}

impl Label {
    /// New empty label.
    pub fn new(owner: u32) -> Self {
        Label {
            owner,
            entries: Vec::new(),
        }
    }

    /// Min-merge an entry (distances only ever shrink as the recursion
    /// climbs — `G_x ⊆ G_{p(x)}`).
    pub fn merge(&mut self, target: u32, to: Dist, from: Dist) {
        match self.entries.binary_search_by_key(&target, |e| e.0) {
            Ok(i) => {
                self.entries[i].1 = self.entries[i].1.min(to);
                self.entries[i].2 = self.entries[i].2.min(from);
            }
            Err(i) => self.entries.insert(i, (target, to, from)),
        }
    }

    /// `d(owner → s)` if `s` is a target.
    pub fn to(&self, s: u32) -> Option<Dist> {
        self.entries
            .binary_search_by_key(&s, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// `d(s → owner)` if `s` is a target.
    pub fn from(&self, s: u32) -> Option<Dist> {
        self.entries
            .binary_search_by_key(&s, |e| e.0)
            .ok()
            .map(|i| self.entries[i].2)
    }

    /// Label size in O(log n)-bit words (3 per entry) — the quantity
    /// Theorem 2 bounds by O(τ² log² n) bits.
    pub fn words(&self) -> usize {
        3 * self.entries.len()
    }
}

/// First index of `s` whose hub is `>= key`, by exponential (galloping)
/// search — O(log gap) instead of O(gap) when one entry list is much
/// longer than the other (deep vertex vs. near-root vertex).
fn gallop(s: &[(u32, Dist, Dist)], key: u32) -> usize {
    if s.is_empty() || s[0].0 >= key {
        return 0;
    }
    let mut hi = 1usize;
    while hi < s.len() && s[hi].0 < key {
        hi *= 2;
    }
    let lo = hi / 2;
    lo + s[lo..s.len().min(hi + 1)].partition_point(|e| e.0 < key)
}

/// The decoder: `dec(la(u), la(v)) = min_{s ∈ B↑(u) ∩ B↑(v)} d(u,s) + d(s,v)`.
pub fn decode(la_u: &Label, la_v: &Label) -> Dist {
    decode_entries(&la_u.entries, &la_v.entries)
}

/// Decode raw sorted entry lists (`(hub, d(owner → hub), d(hub → owner))`,
/// sorted by hub): the hub-intersection minimum over `a`'s forward and
/// `b`'s backward distances — a galloping merge-join with two early exits:
/// disjoint hub ranges return immediately, and a running minimum of 0
/// cannot improve (distances are non-negative). Exposed for consumers that
/// hold raw entry slices rather than [`Label`]s; the `labelserve` store
/// runs the same scan over its structure-of-arrays lanes, and its property
/// suite pins the two implementations bit-identical.
pub fn decode_entries(a: &[(u32, Dist, Dist)], b: &[(u32, Dist, Dist)]) -> Dist {
    if a.is_empty() || b.is_empty() || a[a.len() - 1].0 < b[0].0 || b[b.len() - 1].0 < a[0].0 {
        return INF;
    }
    let mut best = INF;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += gallop(&a[i..], b[j].0),
            std::cmp::Ordering::Greater => j += gallop(&b[j..], a[i].0),
            std::cmp::Ordering::Equal => {
                best = best.min(dist_add(a[i].1, b[j].2));
                if best == 0 {
                    return 0;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// Decode both directions at once: `(d(u → v), d(v → u))`.
pub fn decode_pair(la_u: &Label, la_v: &Label) -> (Dist, Dist) {
    (decode(la_u, la_v), decode(la_v, la_u))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_minimum() {
        let mut l = Label::new(0);
        l.merge(5, 10, 20);
        l.merge(5, 12, 8);
        assert_eq!(l.to(5), Some(10));
        assert_eq!(l.from(5), Some(8));
        l.merge(3, 1, 1);
        assert_eq!(l.entries.len(), 2);
        assert_eq!(l.entries[0].0, 3); // sorted
    }

    #[test]
    fn decode_min_over_common() {
        let mut u = Label::new(0);
        u.merge(2, 4, 9);
        u.merge(7, 1, 9);
        let mut v = Label::new(1);
        v.merge(2, 9, 3); // via 2: 4 + 3 = 7
        v.merge(7, 9, 5); // via 7: 1 + 5 = 6
        v.merge(9, 9, 0);
        assert_eq!(decode(&u, &v), 6);
    }

    #[test]
    fn decode_no_common_is_inf() {
        let mut u = Label::new(0);
        u.merge(1, 1, 1);
        let mut v = Label::new(1);
        v.merge(2, 1, 1);
        assert_eq!(decode(&u, &v), INF);
    }

    #[test]
    fn decode_self_via_own_bag() {
        let mut u = Label::new(4);
        u.merge(4, 0, 0);
        assert_eq!(decode(&u, &u), 0);
    }

    /// The pre-gallop scan, kept as the semantic reference: quadratic
    /// intersection with no early exit.
    fn decode_reference(la_u: &Label, la_v: &Label) -> Dist {
        let mut best = INF;
        for &(s, to, _) in &la_u.entries {
            for &(t, _, from) in &la_v.entries {
                if s == t {
                    best = best.min(dist_add(to, from));
                }
            }
        }
        best
    }

    /// Deterministic random label over hubs drawn from `0..universe`.
    fn random_label(owner: u32, len: usize, universe: u32, state: &mut u64) -> Label {
        let mut next = || {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(owner as u64 + 1442695);
            (*state >> 33) as u32
        };
        let mut l = Label::new(owner);
        for _ in 0..len {
            let hub = next() % universe;
            let to = (next() % 50) as Dist;
            let from = (next() % 50) as Dist;
            l.merge(hub, to, from);
        }
        l
    }

    #[test]
    fn gallop_decode_matches_reference_on_random_labels() {
        let mut state = 0x5EED_u64;
        for universe in [3u32, 8, 64, 1024] {
            for (la, lb) in [(0, 0), (1, 40), (40, 1), (7, 13), (128, 128)] {
                for rep in 0..8 {
                    let u = random_label(rep, la, universe, &mut state);
                    let v = random_label(100 + rep, lb, universe, &mut state);
                    assert_eq!(
                        decode(&u, &v),
                        decode_reference(&u, &v),
                        "universe {universe}, sizes ({la}, {lb}), rep {rep}"
                    );
                    assert_eq!(decode(&v, &u), decode_reference(&v, &u));
                }
            }
        }
    }

    #[test]
    fn gallop_decode_on_skewed_lists() {
        // One huge label vs. a tiny one: the gallop path must skip runs
        // without missing the lone common hub.
        let mut u = Label::new(0);
        for h in 0..2000u32 {
            u.merge(h, (h as Dist) + 1, (h as Dist) + 2);
        }
        let mut v = Label::new(1);
        v.merge(1777, 5, 7);
        assert_eq!(decode(&u, &v), 1778 + 7);
        assert_eq!(decode(&v, &u), 5 + 1779);
        // Disjoint-range early exit.
        let mut w = Label::new(2);
        w.merge(5000, 1, 1);
        assert_eq!(decode(&u, &w), INF);
        assert_eq!(decode(&w, &u), INF);
    }

    #[test]
    fn zero_distance_early_exit_is_exact() {
        let mut u = Label::new(0);
        u.merge(3, 0, 9);
        u.merge(8, 2, 2);
        let mut v = Label::new(1);
        v.merge(3, 4, 0);
        v.merge(8, 1, 1);
        // Hub 3 yields 0 + 0 = 0; nothing later can be smaller.
        assert_eq!(decode(&u, &v), 0);
        assert_eq!(decode_reference(&u, &v), 0);
    }

    #[test]
    fn words_counts_entries() {
        let mut u = Label::new(0);
        u.merge(1, 1, 1);
        u.merge(2, 1, 1);
        assert_eq!(u.words(), 6);
    }
}
