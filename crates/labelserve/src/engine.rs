//! The query engine: a [`LabelStore`] behind per-shard hot-pair caches and
//! batched execution.
//!
//! The engine is shared-state safe by construction — the store is
//! immutable, the caches sit behind per-shard mutexes, and the hit/miss
//! counters are atomics — so one engine serves arbitrarily many threads
//! concurrently with bit-identical answers (the cache only ever stores
//! exact decoded distances, so a hit and a recompute cannot disagree).
//! Lock poisoning is unwound internally: a cache entry is either a
//! complete `(pair, distance)` record or absent, so recovering a poisoned
//! mutex is always safe and queries keep serving after a panicking thread.

use crate::error::ServeError;
use crate::lru::Lru;
use crate::store::{LabelStore, StoreLayout};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use twgraph::Dist;

/// Store compaction and serving knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Nodes per shard (node-id range sharding; also the cache-ownership
    /// granule — pair `(s, t)` is cached in `s`'s shard).
    pub shard_size: usize,
    /// Hot-pair LRU entries per shard; 0 disables caching outright.
    pub cache_capacity: usize,
    /// Physical shard format compacted by builders that honor this config
    /// ([`crate::versioned::VersionedEngine::from_labeling`] and the
    /// session layer); [`StoreLayout::Flat`] is the historical default.
    pub layout: StoreLayout,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shard_size: 4096,
            cache_capacity: 4096,
            layout: StoreLayout::Flat,
        }
    }
}

impl ServeConfig {
    /// A cache-less variant of `self` (identical sharding and layout).
    pub fn without_cache(self) -> Self {
        ServeConfig {
            cache_capacity: 0,
            ..self
        }
    }

    /// A variant of `self` compacting into `layout`.
    pub fn with_layout(self, layout: StoreLayout) -> Self {
        ServeConfig { layout, ..self }
    }
}

/// Cumulative cache counters (exact under concurrency; relaxed ordering —
/// counters never synchronize data).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a shard cache.
    pub hits: u64,
    /// Queries that went to the arena decoder.
    pub misses: u64,
    /// Entries currently resident across all shard caches.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over all queries, in `[0, 1]` (0 when nothing was asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shared, thread-safe distance-query server over a compacted store.
pub struct QueryEngine {
    store: LabelStore,
    cfg: ServeConfig,
    pub(crate) caches: Vec<Mutex<Lru<(u32, u32), Dist>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Recover a possibly-poisoned cache lock: entries are atomic records, so
/// the state is valid whether or not the panicking holder finished.
pub(crate) fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl QueryEngine {
    /// Engine over `store` with one LRU per shard.
    pub fn new(store: LabelStore, cfg: ServeConfig) -> Self {
        let caches = (0..store.shard_count())
            .map(|_| Mutex::new(Lru::new(cfg.cache_capacity)))
            .collect();
        QueryEngine {
            store,
            cfg,
            caches,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &LabelStore {
        &self.store
    }

    /// Dissolve the engine and hand the store back (caches and counters
    /// are dropped) — e.g. to rewrap it under a different [`ServeConfig`]
    /// without recompacting.
    pub fn into_store(self) -> LabelStore {
        self.store
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Exact `d(s → t)`; cross-component pairs answer [`twgraph::INF`],
    /// ids outside `0..n` are a typed error.
    ///
    /// Counter invariant: `hits + misses` equals the number of queries
    /// that returned `Ok`, and a miss is counted only once its entry is
    /// resident — rejected ids and panicking threads leave the counters
    /// untouched, so recovered poisoned locks cannot drift the stats.
    pub fn distance(&self, s: u32, t: u32) -> Result<Dist, ServeError> {
        if self.cfg.cache_capacity == 0 {
            return self.store.distance(s, t);
        }
        // Validate *both* endpoints before touching the cache so unknown
        // ids cannot pin shard locks or skew the counters (`t` used to be
        // checked only after the cache probe, on the miss path).
        let n = self.store.n();
        if s as usize >= n {
            return Err(ServeError::UnknownNode { node: s, n });
        }
        if t as usize >= n {
            return Err(ServeError::UnknownNode { node: t, n });
        }
        let cache = &self.caches[self.store.shard_of(s)];
        if let Some(d) = relock(cache).get(&(s, t)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(d);
        }
        let d = self.store.distance(s, t)?;
        // Insert first, count second: a thread that dies between decode
        // and insert then contributes to neither cache nor counters.
        relock(cache).insert((s, t), d);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(d)
    }

    /// Both directions: `(d(s → t), d(t → s))`.
    pub fn distance_pair(&self, s: u32, t: u32) -> Result<(Dist, Dist), ServeError> {
        Ok((self.distance(s, t)?, self.distance(t, s)?))
    }

    /// Answer a whole batch, one distance per query in input order.
    /// Execution fans out over the rayon pool (the offline stand-in runs
    /// it sequentially; answers are identical either way — queries are
    /// pure reads and the cache stores only exact values). The first
    /// structural error aborts the batch.
    pub fn batch(&self, queries: &[(u32, u32)]) -> Result<Vec<Dist>, ServeError> {
        queries
            .par_iter()
            .map(|&(s, t)| self.distance(s, t))
            .collect()
    }

    /// Cumulative hit/miss counters plus current cache residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.caches.iter().map(|c| relock(c).len()).sum(),
        }
    }

    /// Zero the hit/miss counters and drop every cached pair.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        for c in &self.caches {
            relock(c).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;
    use distlabel::Label;
    use twgraph::INF;

    /// Path 0–1–2–3 with unit weights; every vertex holds all four hubs.
    /// The store compacts into `cfg.layout`, so every test below runs
    /// against whichever physical form it asks for.
    fn path_engine(cfg: ServeConfig) -> QueryEngine {
        let mut labels = Vec::new();
        for v in 0..4i64 {
            let mut l = Label::new(v as u32);
            for h in 0..4i64 {
                l.merge(h as u32, (v - h).unsigned_abs(), (h - v).unsigned_abs());
            }
            labels.push(l);
        }
        let mut b = StoreBuilder::new(4);
        b.add_component(&labels, &[0, 1, 2, 3]).unwrap();
        QueryEngine::new(b.build_layout(cfg.shard_size, cfg.layout).unwrap(), cfg)
    }

    #[test]
    fn caching_changes_counters_not_answers() {
        for layout in [StoreLayout::Flat, StoreLayout::Packed] {
            let cfg = ServeConfig {
                shard_size: 2,
                cache_capacity: 8,
                layout,
            };
            let cached = path_engine(cfg);
            let raw = path_engine(cfg);
            for (s, t) in [(0, 3), (3, 0), (0, 3), (2, 2), (0, 3)] {
                assert_eq!(
                    cached.distance(s, t).unwrap(),
                    raw.store().distance(s, t).unwrap()
                );
            }
            let st = cached.stats();
            assert_eq!(st.hits, 2, "repeated (0,3) must hit");
            assert_eq!(st.misses, 3);
            assert!(st.entries >= 3);
            assert!(st.hit_rate() > 0.39 && st.hit_rate() < 0.41);
            cached.reset();
            assert_eq!(cached.stats(), CacheStats::default());
        }
    }

    #[test]
    fn batch_matches_singles_in_order() {
        let eng = path_engine(ServeConfig::default());
        let queries = [(0u32, 1u32), (3, 0), (1, 1), (0, 3), (3, 0)];
        let batch = eng.batch(&queries).unwrap();
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(*got, eng.distance(q.0, q.1).unwrap());
        }
        assert_eq!(batch, vec![1, 3, 0, 3, 3]);
    }

    #[test]
    fn unknown_node_aborts_batch() {
        let eng = path_engine(ServeConfig::default());
        let err = eng.batch(&[(0, 1), (9, 0)]).unwrap_err();
        assert_eq!(err, ServeError::UnknownNode { node: 9, n: 4 });
        // Target-side validation flows through the store.
        assert_eq!(
            eng.distance(0, 9),
            Err(ServeError::UnknownNode { node: 9, n: 4 })
        );
    }

    /// Regression (issue 7): out-of-range ids must be rejected on the
    /// `s` side, the `t` side, and through the batch path — without
    /// touching the cache or its counters, and without panicking on
    /// extreme ids like `u32::MAX`.
    #[test]
    fn out_of_range_ids_reject_on_both_sides() {
        let eng = path_engine(ServeConfig {
            shard_size: 2,
            cache_capacity: 8,
            ..ServeConfig::default()
        });
        for (s, t, bad) in [
            (9, 0, 9),
            (0, 9, 9),
            (4, 4, 4),
            (u32::MAX, 0, u32::MAX),
            (0, u32::MAX, u32::MAX),
        ] {
            assert_eq!(
                eng.distance(s, t),
                Err(ServeError::UnknownNode { node: bad, n: 4 })
            );
        }
        assert_eq!(
            eng.stats(),
            CacheStats::default(),
            "rejected ids must leave counters and cache untouched"
        );
        for batch in [vec![(0, 1), (9, 0)], vec![(0, 1), (0, 9)]] {
            assert_eq!(
                eng.batch(&batch).unwrap_err(),
                ServeError::UnknownNode { node: 9, n: 4 }
            );
        }
        assert_eq!(eng.distance(0, 3).unwrap(), 3, "engine still serves");
    }

    /// Satellite (issue 7): after a thread panics while holding a shard's
    /// cache lock, the recovered lock must keep hit/miss accounting exact
    /// — `hits + misses == Ok queries`, and residency matches the misses
    /// that actually inserted.
    #[test]
    fn poisoned_cache_lock_keeps_accounting_consistent() {
        use std::sync::Arc;
        let eng = Arc::new(path_engine(ServeConfig {
            shard_size: 2,
            cache_capacity: 8,
            ..ServeConfig::default()
        }));
        eng.distance(0, 3).unwrap(); // miss + insert
        let shard = eng.store().shard_of(0);
        let poisoner = Arc::clone(&eng);
        let joined = std::thread::spawn(move || {
            let _guard = poisoner.caches[shard].lock().unwrap();
            panic!("injected panic while holding the cache lock");
        })
        .join();
        assert!(joined.is_err(), "injection thread must have panicked");
        assert!(eng.caches[shard].is_poisoned());
        // The recovered lock serves the resident entry as a hit, and new
        // pairs as exactly one miss each.
        assert_eq!(eng.distance(0, 3).unwrap(), 3);
        assert_eq!(eng.distance(0, 2).unwrap(), 2);
        assert_eq!(eng.distance(0, 2).unwrap(), 2);
        let st = eng.stats();
        assert_eq!((st.hits, st.misses), (2, 2));
        assert_eq!(st.hits + st.misses, 4, "every Ok query counted once");
        assert_eq!(st.entries, 2, "misses match what the cache stored");
    }

    #[test]
    fn cacheless_engine_never_counts() {
        let eng = path_engine(ServeConfig::default().without_cache());
        for _ in 0..3 {
            assert_eq!(eng.distance(0, 2).unwrap(), 2);
        }
        assert_eq!(eng.stats(), CacheStats::default());
    }

    #[test]
    fn self_distance_zero_and_inf_cacheable() {
        let eng = path_engine(ServeConfig {
            shard_size: 1,
            cache_capacity: 4,
            ..ServeConfig::default()
        });
        assert_eq!(eng.distance(2, 2).unwrap(), 0);
        assert_eq!(eng.distance(2, 2).unwrap(), 0);
        assert!(eng.distance(0, 0).unwrap() < INF);
        assert_eq!(eng.stats().hits, 1);
    }
}
