//! # congest-sim — a round-accurate CONGEST simulator
//!
//! The CONGEST model (paper §2.1): a synchronous network of `n` nodes joined
//! by the undirected communication graph ⟦G⟧. Per round, each node sends one
//! O(log n)-bit message per incident edge per direction, then computes
//! locally for free.
//!
//! ## Cost model
//!
//! Algorithms here execute **supersteps**. In a superstep every node emits
//! messages to neighbours based only on its own state; all messages are then
//! delivered at once. A superstep in which some directed edge carries `w`
//! *words* (one word = one O(log n)-bit unit: a vertex id, a distance under
//! the standard poly(n)-weight assumption, a small tag) is charged
//! `max_(e,dir) ⌈w(e,dir)/W⌉` rounds, `W` being the per-edge per-direction
//! word budget (default 1). This is the number of rounds a real execution
//! pays by pipelining each edge's queue independently, and — because nodes
//! only read their inbox after the superstep — no node ever acts on
//! partially-delivered data, so the accounting is sound. It also realizes
//! Ghaffari's O(dilation + congestion) scheduling bound for concurrent
//! subgraph algorithms (paper Theorem 6): running them in one shared
//! superstep sequence makes the per-edge word count *be* the congestion.
//!
//! ## Virtual networks
//!
//! For the stateful-walk product graphs G_C (paper §5.2) every physical node
//! hosts |Q| virtual nodes. [`EdgeProjection`] maps each virtual edge to the
//! physical edge it rides on (or marks it node-local = free), so the charge
//! for a virtual superstep is measured on physical edges — reproducing the
//! O(|Q|·p_max) simulation overhead by measurement instead of by formula.

mod engine;
mod metrics;
mod projection;
mod wire;

pub use engine::{Network, NetworkConfig};
pub use metrics::{Metrics, MetricsDelta};
pub use projection::EdgeProjection;
pub use wire::WireMsg;
