//! Undirected weighted girth via exact count-1 closed walks
//! (paper §7 + Appendix F, Theorem 5).

use congest_sim::{CongestError, NetworkConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stateful_walks::{CdlLabeling, CountWalk};
use treedec::decomp::NodeInfo;
use twgraph::tw::TreeDecomposition;
use twgraph::{Dist, MultiDigraph, INF};

/// Knobs for the probabilistic girth computation.
#[derive(Clone, Copy, Debug)]
pub struct GirthConfig {
    /// Trials per ĉ value (paper: O(log n)).
    pub trials_per_c: usize,
    /// RNG seed for the edge-marking.
    pub seed: u64,
    /// Measure the CONGEST cost of one representative trial through the
    /// virtual network (the remaining trials run centrally and the total
    /// is reported as `trials × per-trial` — trials are identically
    /// structured, differing only in the random marks).
    pub measure_distributed: bool,
}

impl GirthConfig {
    /// Practical defaults for an n-vertex instance.
    pub fn practical(n: usize, seed: u64) -> Self {
        GirthConfig {
            trials_per_c: 2 + n.max(2).ilog2() as usize,
            seed,
            measure_distributed: false,
        }
    }
}

/// Result of a girth computation.
#[derive(Clone, Copy, Debug)]
pub struct GirthRun {
    /// The computed girth ([`INF`] when the graph is acyclic).
    pub girth: Dist,
    /// Trials executed in total.
    pub trials: usize,
    /// Measured rounds of one representative trial (0 when not measured).
    pub rounds_per_trial: u64,
    /// `trials × rounds_per_trial` (0 when not measured).
    pub rounds_total: u64,
}

/// Undirected weighted girth (the instance must be a symmetrized
/// multigraph — twin arcs sharing `uedge` ids — with strictly positive
/// weights so that Lemma 6's "contains a simple cycle ⇒ weight ≥ g"
/// argument applies).
///
/// Doubling over ĉ = 1, 2, 4, …, 2m (m = undirected edge count; the edge
/// set F of shortest-cycle edges satisfies |F| ≤ m): each trial marks
/// every edge independently with probability 1/(3ĉ) and evaluates
/// `min_u` (shortest exact count-1 closed walk at `u`) through
/// CDL(C_cnt(1)). Every candidate is ≥ g (Lemma 6); whp one trial is
/// tight.
pub fn girth_undirected(
    inst: &MultiDigraph,
    td: &TreeDecomposition,
    info: &[NodeInfo],
    cfg: &GirthConfig,
) -> Result<GirthRun, CongestError> {
    assert!(
        inst.arcs().iter().all(|a| a.weight >= 1),
        "girth needs strictly positive weights"
    );
    let m = inst.n_uedges();
    assert!(m > 0 || inst.n_arcs() == 0, "instance must be symmetrized");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let constraint = CountWalk { c: 1 };
    let mut best = INF;
    let mut trials = 0usize;
    let mut rounds_per_trial = 0u64;

    let mut c_hat = 1u64;
    while c_hat <= (2 * m.max(1)) as u64 {
        for _ in 0..cfg.trials_per_c.max(1) {
            // Random 0/1 marks per undirected edge.
            let p = 1.0 / (3.0 * c_hat as f64);
            let mut marks = vec![0u32; m];
            for mk in marks.iter_mut() {
                if rng.gen_bool(p) {
                    *mk = 1;
                }
            }
            let mut marked = inst.clone();
            for a in marked.arcs_mut() {
                a.label = if a.uedge.is_some() {
                    marks[a.uedge.idx()]
                } else {
                    0
                };
            }
            // CDL(C_cnt(1)); measure the first trial if asked.
            let cdl = if cfg.measure_distributed && trials == 0 {
                let (cdl, metrics) = CdlLabeling::build_distributed(
                    &marked,
                    &constraint,
                    td,
                    info,
                    NetworkConfig::default(),
                )?;
                rounds_per_trial = metrics.rounds;
                cdl
            } else {
                CdlLabeling::build_centralized(&marked, &constraint, td, info)
            };
            // g(u) = shortest exact count-1 closed walk at u — decoded
            // locally from u's own label copies.
            for u in 0..inst.n() as u32 {
                best = best.min(cdl.dist(u, u, constraint.count_state(1)));
            }
            trials += 1;
        }
        c_hat *= 2;
    }

    Ok(GirthRun {
        girth: best,
        trials,
        rounds_per_trial,
        rounds_total: rounds_per_trial * trials as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::girth_exact_centralized;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treedec::{decompose_centralized, SepConfig};
    use twgraph::gen::{banded_path, cycle, with_random_weights};

    fn decomposition_of(inst: &MultiDigraph, seed: u64) -> (TreeDecomposition, Vec<NodeInfo>) {
        let g = inst.comm_graph();
        let sep_cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let dec = decompose_centralized(&g, 3, &sep_cfg, &mut rng).unwrap();
        (dec.td, dec.info)
    }

    #[test]
    fn plain_cycle_girth_is_total_weight() {
        let inst = with_random_weights(&cycle(9), 5, 3);
        let want = girth_exact_centralized(&inst);
        let (td, info) = decomposition_of(&inst, 1);
        let run = girth_undirected(&inst, &td, &info, &GirthConfig::practical(9, 42)).unwrap();
        assert_eq!(run.girth, want);
    }

    #[test]
    fn matches_oracle_on_banded_paths() {
        for seed in 0..3 {
            let g = banded_path(24, 2);
            let inst = with_random_weights(&g, 6, seed);
            let want = girth_exact_centralized(&inst);
            let (td, info) = decomposition_of(&inst, seed + 7);
            let run = girth_undirected(&inst, &td, &info, &GirthConfig::practical(24, 99 + seed))
                .unwrap();
            assert_eq!(run.girth, want, "seed {seed}");
            assert!(run.trials > 0);
        }
    }

    #[test]
    fn acyclic_reports_inf() {
        let g = twgraph::gen::random_tree(20, 4);
        let inst = with_random_weights(&g, 5, 2);
        let (td, info) = decomposition_of(&inst, 3);
        let run = girth_undirected(&inst, &td, &info, &GirthConfig::practical(20, 5)).unwrap();
        assert_eq!(run.girth, INF);
    }

    #[test]
    fn never_underestimates() {
        // Even with a single adversarial trial budget the result is a
        // valid upper bound's inverse: ≥ true girth (Lemma 6).
        let g = banded_path(20, 3);
        let inst = with_random_weights(&g, 4, 9);
        let want = girth_exact_centralized(&inst);
        let (td, info) = decomposition_of(&inst, 4);
        let run = girth_undirected(
            &inst,
            &td,
            &info,
            &GirthConfig {
                trials_per_c: 1,
                seed: 0,
                measure_distributed: false,
            },
        )
        .unwrap();
        assert!(run.girth >= want);
    }

    #[test]
    fn distributed_measurement_mode() {
        let inst = with_random_weights(&cycle(8), 3, 1);
        let (td, info) = decomposition_of(&inst, 6);
        let run = girth_undirected(
            &inst,
            &td,
            &info,
            &GirthConfig {
                trials_per_c: 1,
                seed: 11,
                measure_distributed: true,
            },
        )
        .unwrap();
        assert!(run.rounds_per_trial > 0);
        assert_eq!(run.rounds_total, run.rounds_per_trial * run.trials as u64);
    }
}
