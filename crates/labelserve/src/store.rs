//! The compacted label store: one flat, sharded CSR arena over every
//! node's distance-label entries.
//!
//! ## Layout
//!
//! [`distlabel::Label`] keeps one heap `Vec` per node — fine for
//! construction, hostile to query serving (pointer chase per lookup,
//! allocator-scattered entries). [`StoreBuilder`] compacts the per-node
//! entry lists into per-shard structure-of-arrays arenas:
//!
//! ```text
//! shard s  (nodes [base, base + shard_size))
//!   offsets : u32  × (nodes + 1)     CSR row starts
//!   hubs    : u32  × entries         global hub ids, sorted per node
//!   dto     : Dist × entries         d(node → hub)
//!   dfrom   : Dist × entries         d(hub → node)
//! ```
//!
//! The decoder scans only `hubs` until it finds an intersection, so the
//! hot loop touches 4-byte lanes (16 hubs per cache line); the two
//! distance lanes are loaded on matches only. Hub ids are **global**
//! vertex ids (mapped through each component's `old_of`), which makes
//! cross-component intersections empty by construction — a cross pair
//! decodes to [`INF`], matching the oracle's semantics for unreachable
//! pairs — and lets the store additionally keep a component map for an
//! O(1) early exit.

use crate::error::ServeError;
use distlabel::Label;
use std::sync::Arc;
use twgraph::{dist_add, Dist, INF};

const UNASSIGNED: u32 = u32::MAX;

/// Accumulates per-component label sets, then compacts them into a
/// [`LabelStore`]. Components must partition the global vertex space
/// `0..n`; every violation is a typed [`ServeError`].
pub struct StoreBuilder {
    n: usize,
    comp_of: Vec<u32>,
    entries: Vec<Vec<(u32, Dist, Dist)>>,
    comps: u32,
}

impl StoreBuilder {
    /// Builder over the global vertex space `0..n`.
    pub fn new(n: usize) -> Self {
        StoreBuilder {
            n,
            comp_of: vec![UNASSIGNED; n],
            entries: vec![Vec::new(); n],
            comps: 0,
        }
    }

    /// Register one connected component: `labels[i]` is the label of the
    /// component-local vertex `i`, and `old_of[i]` its global id (sorted
    /// ascending, as produced by component splitting — the monotone map
    /// keeps per-node hub lists sorted).
    pub fn add_component(&mut self, labels: &[Label], old_of: &[u32]) -> Result<(), ServeError> {
        if labels.len() != old_of.len() {
            return Err(ServeError::ComponentShapeMismatch {
                labels: labels.len(),
                nodes: old_of.len(),
            });
        }
        debug_assert!(old_of.windows(2).all(|w| w[0] < w[1]), "old_of not sorted");
        let comp = self.comps;
        for (label, &global) in labels.iter().zip(old_of) {
            let slot = self
                .comp_of
                .get_mut(global as usize)
                .ok_or(ServeError::UnknownNode {
                    node: global,
                    n: self.n,
                })?;
            if *slot != UNASSIGNED {
                return Err(ServeError::DuplicateNode { node: global });
            }
            *slot = comp;
            let mapped: Result<Vec<(u32, Dist, Dist)>, ServeError> = label
                .entries
                .iter()
                .map(|&(hub, to, from)| {
                    old_of.get(hub as usize).map(|&gh| (gh, to, from)).ok_or(
                        ServeError::HubOutOfRange {
                            hub,
                            comp_n: old_of.len(),
                        },
                    )
                })
                .collect();
            self.entries[global as usize] = mapped?;
        }
        self.comps += 1;
        Ok(())
    }

    /// Register an isolated vertex as its own component: the synthesized
    /// label holds only the self-hub at distance 0, so `v → v` decodes to
    /// 0 and every other pair through `v` to [`INF`].
    pub fn add_singleton(&mut self, v: u32) -> Result<(), ServeError> {
        let slot = self
            .comp_of
            .get_mut(v as usize)
            .ok_or(ServeError::UnknownNode { node: v, n: self.n })?;
        if *slot != UNASSIGNED {
            return Err(ServeError::DuplicateNode { node: v });
        }
        *slot = self.comps;
        self.comps += 1;
        self.entries[v as usize] = vec![(v, 0, 0)];
        Ok(())
    }

    /// Compact into the sharded arena. Every vertex of `0..n` must have
    /// been covered by exactly one `add_*` call.
    pub fn build(self, shard_size: usize) -> Result<LabelStore, ServeError> {
        if let Some(v) = self.comp_of.iter().position(|&c| c == UNASSIGNED) {
            return Err(ServeError::UncoveredNode { node: v as u32 });
        }
        let shard_size = shard_size.max(1);
        let shard_count = self.n.div_ceil(shard_size).max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut entries_total = 0usize;
        for s in 0..shard_count {
            let base = s * shard_size;
            let hi = ((s + 1) * shard_size).min(self.n);
            let rows = &self.entries[base..hi];
            let total: usize = rows.iter().map(|r| r.len()).sum();
            let mut offsets = Vec::with_capacity(hi - base + 1);
            let mut hubs = Vec::with_capacity(total);
            let mut dto = Vec::with_capacity(total);
            let mut dfrom = Vec::with_capacity(total);
            offsets.push(0u32);
            for row in rows {
                for &(hub, to, from) in row {
                    hubs.push(hub);
                    dto.push(to);
                    dfrom.push(from);
                }
                offsets.push(hubs.len() as u32);
            }
            entries_total += total;
            shards.push(Arc::new(Shard {
                base: base as u32,
                offsets,
                hubs,
                dto,
                dfrom,
            }));
        }
        Ok(LabelStore {
            n: self.n,
            shard_size,
            comp_of: self.comp_of,
            shards,
            entries_total,
            components: self.comps as usize,
        })
    }
}

/// One node-range shard's CSR arena.
#[derive(Debug)]
struct Shard {
    base: u32,
    offsets: Vec<u32>,
    hubs: Vec<u32>,
    dto: Vec<Dist>,
    dfrom: Vec<Dist>,
}

/// The compacted, sharded distance-label store. Immutable after build;
/// shared freely across query threads. Shards are `Arc`ed so an
/// epoch-to-epoch rebuild ([`LabelStore::rebuilt`]) shares every clean
/// shard's arena with its predecessor instead of copying it.
#[derive(Debug)]
pub struct LabelStore {
    n: usize,
    shard_size: usize,
    comp_of: Vec<u32>,
    shards: Vec<Arc<Shard>>,
    entries_total: usize,
    components: usize,
}

/// First index of `hubs` with value `>= key` (exponential search; mirrors
/// `distlabel`'s galloping decoder on the SoA hub lane).
fn gallop(hubs: &[u32], key: u32) -> usize {
    if hubs.is_empty() || hubs[0] >= key {
        return 0;
    }
    let mut hi = 1usize;
    while hi < hubs.len() && hubs[hi] < key {
        hi *= 2;
    }
    let lo = hi / 2;
    lo + hubs[lo..hubs.len().min(hi + 1)].partition_point(|&h| h < key)
}

impl LabelStore {
    /// Global vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of node-range shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Nodes per shard (last shard may be partial).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Total label entries across all shards.
    pub fn entries(&self) -> usize {
        self.entries_total
    }

    /// Connected components registered at build time.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Arena footprint in bytes: hub/distance lanes plus CSR offsets and
    /// the component map.
    pub fn bytes(&self) -> usize {
        let entry = std::mem::size_of::<u32>() + 2 * std::mem::size_of::<Dist>();
        let offsets: usize = self.shards.iter().map(|s| s.offsets.len() * 4).sum();
        self.entries_total * entry + offsets + self.comp_of.len() * 4
    }

    /// Component id of `v`.
    pub fn comp_of(&self, v: u32) -> Result<u32, ServeError> {
        self.comp_of
            .get(v as usize)
            .copied()
            .ok_or(ServeError::UnknownNode { node: v, n: self.n })
    }

    /// The shard index owning node `v` (valid ids only).
    pub fn shard_of(&self, v: u32) -> usize {
        v as usize / self.shard_size
    }

    /// `(hubs, d(v → hub), d(hub → v))` lanes of node `v`.
    fn lanes(&self, v: u32) -> (&[u32], &[Dist], &[Dist]) {
        let shard = &self.shards[self.shard_of(v)];
        let local = (v - shard.base) as usize;
        let (lo, hi) = (
            shard.offsets[local] as usize,
            shard.offsets[local + 1] as usize,
        );
        (
            &shard.hubs[lo..hi],
            &shard.dto[lo..hi],
            &shard.dfrom[lo..hi],
        )
    }

    /// Exact `d(s → t)` straight off the arena (no cache): the galloping
    /// hub-intersection minimum, bit-identical to
    /// [`distlabel::decode`] on the uncompacted labels.
    pub fn distance(&self, s: u32, t: u32) -> Result<Dist, ServeError> {
        if s as usize >= self.n {
            return Err(ServeError::UnknownNode { node: s, n: self.n });
        }
        if t as usize >= self.n {
            return Err(ServeError::UnknownNode { node: t, n: self.n });
        }
        if self.comp_of[s as usize] != self.comp_of[t as usize] {
            return Ok(INF);
        }
        let (sh, sto, _) = self.lanes(s);
        let (th, _, tfrom) = self.lanes(t);
        Ok(decode_lanes(sh, sto, th, tfrom))
    }

    /// Both directions at once: `(d(s → t), d(t → s))`.
    pub fn distance_pair(&self, s: u32, t: u32) -> Result<(Dist, Dist), ServeError> {
        Ok((self.distance(s, t)?, self.distance(t, s)?))
    }

    /// How many shard arenas `self` physically shares with `other`
    /// (same `Arc` allocation) — the epoch-versioning tests pin that a
    /// partial rebuild copies only dirty shards.
    pub fn shards_shared_with(&self, other: &LabelStore) -> usize {
        self.shards
            .iter()
            .zip(&other.shards)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// True when no vertex of shard `s` appears in the sorted `dirty` list.
    pub fn shard_clean(&self, s: usize, dirty: &[u32]) -> bool {
        let lo = (s * self.shard_size) as u32;
        let hi = (((s + 1) * self.shard_size).min(self.n)) as u32;
        let start = dirty.partition_point(|&v| v < lo);
        !(start < dirty.len() && dirty[start] < hi)
    }

    /// The next epoch's store: shards containing a vertex of `dirty`
    /// (sorted global ids) are recompacted from `entries_of` (global-hub
    /// entry list per vertex, sorted by hub); clean shards share their
    /// arena with `self` via `Arc`. `comp_of` is the updated component map
    /// — always replaced, since component renumbering is cheap and the
    /// INF early-exit must track the post-update component structure.
    pub fn rebuilt(
        &self,
        dirty: &[u32],
        comp_of: Vec<u32>,
        entries_of: impl Fn(u32) -> Vec<(u32, Dist, Dist)>,
    ) -> Result<LabelStore, ServeError> {
        debug_assert_eq!(comp_of.len(), self.n);
        if let Some(&v) = dirty.iter().find(|&&v| v as usize >= self.n) {
            return Err(ServeError::UnknownNode { node: v, n: self.n });
        }
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut entries_total = 0usize;
        for (s, old) in self.shards.iter().enumerate() {
            if self.shard_clean(s, dirty) {
                entries_total += old.hubs.len();
                shards.push(Arc::clone(old));
                continue;
            }
            let base = s * self.shard_size;
            let hi = ((s + 1) * self.shard_size).min(self.n);
            let mut offsets = Vec::with_capacity(hi - base + 1);
            let mut hubs = Vec::new();
            let mut dto = Vec::new();
            let mut dfrom = Vec::new();
            offsets.push(0u32);
            for v in base..hi {
                for (hub, to, from) in entries_of(v as u32) {
                    hubs.push(hub);
                    dto.push(to);
                    dfrom.push(from);
                }
                offsets.push(hubs.len() as u32);
            }
            entries_total += hubs.len();
            shards.push(Arc::new(Shard {
                base: base as u32,
                offsets,
                hubs,
                dto,
                dfrom,
            }));
        }
        let components = comp_of.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        Ok(LabelStore {
            n: self.n,
            shard_size: self.shard_size,
            comp_of,
            shards,
            entries_total,
            components,
        })
    }
}

/// Merge-join over two sorted hub lanes; `a`'s forward lane meets `b`'s
/// backward lane. Same early exits as `distlabel::decode_entries`.
fn decode_lanes(ah: &[u32], ato: &[Dist], bh: &[u32], bfrom: &[Dist]) -> Dist {
    if ah.is_empty() || bh.is_empty() || ah[ah.len() - 1] < bh[0] || bh[bh.len() - 1] < ah[0] {
        return INF;
    }
    let mut best = INF;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ah.len() && j < bh.len() {
        match ah[i].cmp(&bh[j]) {
            std::cmp::Ordering::Less => i += gallop(&ah[i..], bh[j]),
            std::cmp::Ordering::Greater => j += gallop(&bh[j..], ah[i]),
            std::cmp::Ordering::Equal => {
                best = best.min(dist_add(ato[i], bfrom[j]));
                if best == 0 {
                    return 0;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built two-component store: a 3-path {0,1,2} (unit weights,
    /// hubs = all three vertices for simplicity) and a singleton {3}.
    fn tiny_store(shard_size: usize) -> LabelStore {
        let mut labels = Vec::new();
        let d = |a: i64, b: i64| (a - b).unsigned_abs();
        for v in 0..3i64 {
            let mut l = Label::new(v as u32);
            for h in 0..3i64 {
                l.merge(h as u32, d(v, h), d(h, v));
            }
            labels.push(l);
        }
        let mut b = StoreBuilder::new(4);
        b.add_component(&labels, &[0, 1, 2]).unwrap();
        b.add_singleton(3).unwrap();
        b.build(shard_size).unwrap()
    }

    #[test]
    fn distances_and_cross_component_inf() {
        for shard_size in [1, 2, 64] {
            let s = tiny_store(shard_size);
            assert_eq!(s.n(), 4);
            assert_eq!(s.components(), 2);
            assert_eq!(s.distance(0, 2).unwrap(), 2);
            assert_eq!(s.distance(2, 0).unwrap(), 2);
            assert_eq!(s.distance(1, 1).unwrap(), 0);
            assert_eq!(s.distance(3, 3).unwrap(), 0);
            assert_eq!(s.distance(0, 3).unwrap(), INF, "cross-component pair");
            assert_eq!(s.distance_pair(1, 2).unwrap(), (1, 1));
        }
    }

    #[test]
    fn unknown_node_is_typed() {
        let s = tiny_store(2);
        assert_eq!(
            s.distance(4, 0),
            Err(ServeError::UnknownNode { node: 4, n: 4 })
        );
        assert_eq!(
            s.distance(0, 9),
            Err(ServeError::UnknownNode { node: 9, n: 4 })
        );
        assert_eq!(s.comp_of(7), Err(ServeError::UnknownNode { node: 7, n: 4 }));
    }

    #[test]
    fn builder_rejects_partitioning_violations() {
        let mut b = StoreBuilder::new(2);
        b.add_singleton(0).unwrap();
        assert_eq!(
            b.add_singleton(0),
            Err(ServeError::DuplicateNode { node: 0 })
        );
        assert_eq!(
            b.build(4).map(|_| ()).unwrap_err(),
            ServeError::UncoveredNode { node: 1 }
        );

        let mut b = StoreBuilder::new(2);
        let mut bad = Label::new(0);
        bad.merge(5, 1, 1); // hub 5 outside a 1-vertex component
        assert_eq!(
            b.add_component(&[bad], &[0]),
            Err(ServeError::HubOutOfRange { hub: 5, comp_n: 1 })
        );
        assert_eq!(
            b.add_component(&[], &[1]),
            Err(ServeError::ComponentShapeMismatch {
                labels: 0,
                nodes: 1
            })
        );
    }

    #[test]
    fn sharding_covers_the_space_and_counts_bytes() {
        let s = tiny_store(3);
        assert_eq!(s.shard_count(), 2);
        assert_eq!(s.shard_of(2), 0);
        assert_eq!(s.shard_of(3), 1);
        assert_eq!(s.entries(), 3 * 3 + 1);
        assert!(s.bytes() >= s.entries() * 20);
    }

    #[test]
    fn rebuilt_shares_clean_shards_and_swaps_dirty_rows() {
        let s = tiny_store(2); // shards: {0,1}, {2,3}
                               // Dirty only vertex 3: shard 0 must be shared, shard 1 rebuilt.
        let comp_of: Vec<u32> = (0..4).map(|v| s.comp_of(v).unwrap()).collect();
        let r = s
            .rebuilt(&[3], comp_of, |v| {
                assert!(v >= 2, "entries_of called for a clean-shard vertex");
                if v == 3 {
                    vec![(3, 0, 0), (9, 7, 7)]
                } else {
                    vec![(0, 2, 2), (1, 1, 1), (2, 0, 0)]
                }
            })
            .unwrap();
        assert_eq!(r.shards_shared_with(&s), 1);
        assert_eq!(r.distance(0, 2).unwrap(), s.distance(0, 2).unwrap());
        assert_eq!(r.entries(), s.entries() + 1);
        assert_eq!(r.components(), s.components());
        // The dirty row now carries the new entries.
        assert_eq!(r.distance(3, 3).unwrap(), 0);

        // Empty dirty list shares everything.
        let comp_of: Vec<u32> = (0..4).map(|v| s.comp_of(v).unwrap()).collect();
        let same = s.rebuilt(&[], comp_of, |_| unreachable!()).unwrap();
        assert_eq!(same.shards_shared_with(&s), 2);

        // Out-of-range dirty vertex is a typed error.
        assert_eq!(
            s.rebuilt(&[7], vec![0; 4], |_| Vec::new())
                .map(|_| ())
                .unwrap_err(),
            ServeError::UnknownNode { node: 7, n: 4 }
        );
    }
}
