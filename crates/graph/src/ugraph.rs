//! Simple undirected unweighted graphs in CSR form.
//!
//! [`UGraph`] models the communication network ⟦G⟧ of the CONGEST model
//! (paper §2.1): self-loops removed, parallel edges merged, orientation
//! dropped. It is immutable after construction; build via [`UGraphBuilder`]
//! or [`UGraph::from_edges`].

use crate::NodeId;

/// An immutable simple undirected graph stored in compressed sparse row form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UGraph {
    n: u32,
    /// `offsets[v]..offsets[v+1]` indexes `targets` for the neighbours of `v`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour lists.
    targets: Vec<u32>,
}

impl UGraph {
    /// Build a simple graph on `n` vertices from an edge list. Self-loops are
    /// dropped and parallel edges merged, matching the paper's ⟦G⟧ operator.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut b = UGraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        UGraph {
            n: n as u32,
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Whether `{u, v}` is an edge (binary search on the sorted list).
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterate over all vertices as raw `u32` indices.
    pub fn vertices(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.n
    }

    /// Iterate over all vertices as [`NodeId`]s.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    /// Iterate over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The isomorphic graph with vertex `v` renamed to `perm[v]`.
    /// `perm` must be a permutation of `0..n`.
    pub fn relabeled(&self, perm: &[u32]) -> UGraph {
        assert_eq!(perm.len(), self.n());
        debug_assert!({
            let mut seen = vec![false; self.n()];
            perm.iter().all(|&p| {
                let fresh = !seen[p as usize];
                seen[p as usize] = true;
                fresh
            })
        });
        UGraph::from_edges(
            self.n(),
            self.edges()
                .map(|(u, v)| (perm[u as usize], perm[v as usize])),
        )
    }

    /// The subgraph induced by `keep` (vertices with `keep[v] == true`),
    /// together with the mapping from new indices to original ones.
    ///
    /// Returned mapping: `old_of[new] = old`. Vertices not kept are absent.
    pub fn induced(&self, keep: &[bool]) -> (UGraph, Vec<u32>) {
        assert_eq!(keep.len(), self.n());
        let mut new_of = vec![u32::MAX; self.n()];
        let mut old_of = Vec::new();
        for v in self.vertices() {
            if keep[v as usize] {
                new_of[v as usize] = old_of.len() as u32;
                old_of.push(v);
            }
        }
        let mut b = UGraphBuilder::new(old_of.len());
        for (u, v) in self.edges() {
            if keep[u as usize] && keep[v as usize] {
                b.add_edge(new_of[u as usize], new_of[v as usize]);
            }
        }
        (b.build(), old_of)
    }
}

/// Incremental builder for [`UGraph`].
#[derive(Clone, Debug, Default)]
pub struct UGraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl UGraphBuilder {
    /// Builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 range");
        UGraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Record an undirected edge. Self-loops are silently dropped; duplicates
    /// are merged at [`build`](Self::build) time.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
    }

    /// Number of vertices the builder was created with.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Finalize into CSR form: sort, dedupe, count, fill.
    pub fn build(mut self) -> UGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let mut deg = vec![0u32; n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; self.edges.len() * 2];
        for &(u, v) in &self.edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Neighbour lists must be sorted for `has_edge`'s binary search.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            targets[lo..hi].sort_unstable();
        }
        UGraph {
            n: n as u32,
            offsets,
            targets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> UGraph {
        UGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn self_loops_dropped_and_duplicates_merged() {
        let g = UGraph::from_edges(3, [(0, 0), (0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn neighbors_sorted() {
        let g = UGraph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn edges_iterate_once() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn induced_subgraph() {
        let g = UGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (h, old_of) = g.induced(&[true, true, true, false]);
        assert_eq!(h.n(), 3);
        assert_eq!(h.m(), 2); // the cycle minus vertex 3 is a path
        assert_eq!(old_of, vec![0, 1, 2]);
        assert!(h.has_edge(0, 1) && h.has_edge(1, 2) && !h.has_edge(0, 2));
    }

    #[test]
    fn empty_graph() {
        let g = UGraph::empty(4);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = UGraphBuilder::new(2);
        b.add_edge(0, 5);
    }
}
