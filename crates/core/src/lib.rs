//! # lowtw — fully polynomial-time distributed computation in
//! low-treewidth graphs
//!
//! A reproduction of Izumi–Kitamura–Naruse–Schwartzman (SPAA 2022):
//! CONGEST algorithms whose round complexity is polynomial in the
//! treewidth τ, linear in the diameter D and polylogarithmic in n —
//! executed on a round-accurate simulator that charges every word moved.
//!
//! ```
//! use lowtw::prelude::*;
//!
//! // A random partial 3-tree instance with weighted directed arcs.
//! let g = twgraph::gen::partial_ktree(200, 3, 0.7, 7);
//! let inst = twgraph::gen::with_random_weights(&g, 100, 7);
//!
//! // Decompose once; reuse for every distance problem.
//! let session = Session::decompose(&g, 4, 7).unwrap();
//! assert!(session.width() < g.n());
//!
//! // Exact distance labels; decode any pair locally.
//! let labels = session.labels(&inst);
//! let d = lowtw::decode(&labels[3], &labels[77]);
//! assert_eq!(d, twgraph::alg::dijkstra(&inst, 3).dist[77]);
//! ```
//!
//! The heavy lifting lives in the focused member crates, all re-exported
//! here:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`twgraph`] | graph types, generators, treewidth toolkit, oracles |
//! | [`congest_sim`] | the CONGEST superstep engine and cost model |
//! | [`subgraph_ops`] | PA / RST / STA / SLE / CCD / BCT / MVC primitives |
//! | [`treedec`] | `Sep` + distributed tree decomposition (Thm 1) |
//! | [`distlabel`] | distance labeling + SSSP (Thm 2) |
//! | [`labelserve`] | sharded, cached query serving over compacted labels |
//! | [`servd`] | socketed serving front-end: varint wire protocol + SLO stats |
//! | [`stateful_walks`] | walk constraints, product graphs, CDL (Thm 3) |
//! | [`bmatch`] | bipartite maximum matching (Thm 4) |
//! | [`girth`] | weighted girth, directed + undirected (Thm 5) |
//! | [`baselines`] | Bellman–Ford, pipelined APSP, Hopcroft–Karp, … |

pub use baselines;
pub use bmatch;
pub use congest_sim;
pub use distlabel;
pub use girth;
pub use labelserve;
pub use servd;
pub use stateful_walks;
pub use subgraph_ops;
pub use treedec;
pub use twgraph;

pub use congest_sim::{CongestError, Metrics, Network, NetworkConfig};
pub use distlabel::label::{decode, decode_pair, Label};
pub use distlabel::{DynamicLabeling, UpdateReport};
pub use labelserve::{
    PublishStats, QueryEngine, ServeConfig, ServeError, StoreFileError, StoreLayout,
    VersionedEngine,
};
pub use servd::{Client, ServdConfig, Server};
pub use treedec::{DecompError, SepConfig};
pub use twgraph::{Dist, EdgeBatch, MultiDigraph, UGraph, INF};

/// Everything most callers need.
pub mod prelude {
    pub use crate::{serve_from_file, DynamicSession, NetServeError, Session, UpdateError};
    pub use congest_sim::{Network, NetworkConfig};
    pub use distlabel::label::{decode, decode_pair, Label};
    pub use labelserve::{QueryEngine, ServeConfig, StoreLayout, VersionedEngine};
    pub use servd::{Client, ServdConfig, Server};
    pub use twgraph::{Dist, EdgeBatch, MultiDigraph, UGraph, INF};
}

/// Serve a persisted `LWLSTOR1` store file (written by
/// [`Session::serve_to_file`] or `LabelStore::write_to`) without a
/// session: the file is mapped (packed segments serve zero-copy),
/// validated, and wrapped in a cached [`QueryEngine`]. `cfg.layout` is
/// ignored — the file header records the layout it was built with.
pub fn serve_from_file(
    path: impl AsRef<std::path::Path>,
    cfg: ServeConfig,
) -> Result<QueryEngine, StoreFileError> {
    Ok(QueryEngine::new(
        labelserve::LabelStore::open_mmap(path)?,
        cfg,
    ))
}

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treedec::decomp::NodeInfo;
use twgraph::tw::TreeDecomposition;

/// A decomposition session: compute the tree decomposition of a
/// communication graph once, then run any of the paper's algorithms on
/// instances over that topology.
pub struct Session {
    /// The communication graph ⟦G⟧.
    pub graph: UGraph,
    /// The tree decomposition Φ.
    pub td: TreeDecomposition,
    /// Recursion records (G'_x / boundary / separators per tree node).
    pub info: Vec<NodeInfo>,
    /// The `t` the separator algorithm settled on.
    pub t_used: u64,
}

impl Session {
    /// Decompose `g` centrally with practical constants (`t0` = initial
    /// treewidth guess, usually τ+1).
    pub fn decompose(g: &UGraph, t0: u64, seed: u64) -> Result<Self, DecompError> {
        let cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = treedec::decompose_centralized(g, t0, &cfg, &mut rng)?;
        Ok(Session {
            graph: g.clone(),
            td: out.td,
            info: out.info,
            t_used: out.t_used,
        })
    }

    /// Decompose on the CONGEST simulator (Theorem 1); returns the session
    /// and the charged rounds.
    pub fn decompose_distributed(
        g: &UGraph,
        t0: u64,
        seed: u64,
    ) -> Result<(Self, u64), DecompError> {
        let cfg = SepConfig::practical(g.n());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let out = treedec::decompose_distributed(&mut net, t0, &cfg, &mut rng)?;
        let rounds = out.rounds + out.backbone_rounds;
        Ok((
            Session {
                graph: g.clone(),
                td: out.td,
                info: out.info,
                t_used: out.t_used,
            },
            rounds,
        ))
    }

    /// Decomposition width (paper Theorem 1: O(τ² log n)).
    pub fn width(&self) -> usize {
        self.td.width()
    }

    /// Decomposition depth (Theorem 1: O(log n)).
    pub fn depth(&self) -> usize {
        self.td.stats().depth
    }

    /// Exact distance labels for a weighted directed instance over this
    /// topology (Theorem 2), built centrally.
    pub fn labels(&self, inst: &MultiDigraph) -> Vec<Label> {
        assert_eq!(inst.n(), self.graph.n());
        distlabel::build_labels_centralized(inst, &self.td, &self.info)
    }

    /// Distance labels built on the simulator; returns `(labels, rounds)`.
    pub fn labels_distributed(
        &self,
        inst: &MultiDigraph,
    ) -> Result<(Vec<Label>, u64), CongestError> {
        let mut net = Network::new(self.graph.clone(), NetworkConfig::default());
        distlabel::build_labels_distributed(&mut net, inst, &self.td, &self.info)
    }

    /// Build-once / query-many: construct labels for `inst`, compact them
    /// into a sharded [`labelserve::LabelStore`], and return the cached
    /// [`QueryEngine`] serving exact distance queries over it.
    ///
    /// ```
    /// use lowtw::prelude::*;
    ///
    /// let g = twgraph::gen::partial_ktree(80, 2, 0.7, 5);
    /// let inst = twgraph::gen::with_random_weights(&g, 20, 5);
    /// let session = Session::decompose(&g, 3, 5).unwrap();
    /// let engine = session.serve(&inst, ServeConfig::default()).unwrap();
    /// let d = engine.distance(0, 79).unwrap();
    /// assert_eq!(d, twgraph::alg::dijkstra(&inst, 0).dist[79]);
    /// ```
    pub fn serve(&self, inst: &MultiDigraph, cfg: ServeConfig) -> Result<QueryEngine, ServeError> {
        Ok(QueryEngine::new(self.build_store(inst, &cfg)?, cfg))
    }

    /// Compact `inst`'s labels into a store in `cfg.layout` (shared by
    /// the in-process, persisted, and socketed serve fronts).
    fn build_store(
        &self,
        inst: &MultiDigraph,
        cfg: &ServeConfig,
    ) -> Result<labelserve::LabelStore, ServeError> {
        let labels = self.labels(inst);
        let ids: Vec<u32> = (0..self.graph.n() as u32).collect();
        let mut builder = labelserve::StoreBuilder::new(self.graph.n());
        builder.add_component(&labels, &ids)?;
        builder.build_layout(cfg.shard_size, cfg.layout)
    }

    /// Build-once / serve-later: construct and compact the labels like
    /// [`serve`](Session::serve), then persist the store as one
    /// `LWLSTOR1` shard file at `path`. A fresh process (no session, no
    /// decomposition) serves it back with [`serve_from_file`].
    ///
    /// ```
    /// use lowtw::prelude::*;
    ///
    /// let g = twgraph::gen::partial_ktree(80, 2, 0.7, 5);
    /// let inst = twgraph::gen::with_random_weights(&g, 20, 5);
    /// let session = Session::decompose(&g, 3, 5).unwrap();
    /// let cfg = ServeConfig::default().with_layout(StoreLayout::Packed);
    /// let path = std::env::temp_dir().join(format!("doc_store_{}.lbl", std::process::id()));
    /// session.serve_to_file(&inst, cfg, &path).unwrap();
    ///
    /// let engine = lowtw::serve_from_file(&path, cfg).unwrap();
    /// let d = engine.distance(0, 79).unwrap();
    /// assert_eq!(d, twgraph::alg::dijkstra(&inst, 0).dist[79]);
    /// std::fs::remove_file(&path).ok();
    /// ```
    pub fn serve_to_file(
        &self,
        inst: &MultiDigraph,
        cfg: ServeConfig,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), StoreFileError> {
        self.build_store(inst, &cfg)?.write_to(path)
    }

    /// [`serve`](Session::serve), but behind a socket: build the labels,
    /// compact them into a store, wrap it in an epoch-versioned
    /// [`VersionedEngine`], and spawn a [`servd::Server`] answering the
    /// wire protocol on `addr`. Bind to port 0 for an ephemeral port; the
    /// chosen address is `server.local_addr()`.
    ///
    /// ```
    /// use lowtw::prelude::*;
    ///
    /// let g = twgraph::gen::partial_ktree(80, 2, 0.7, 5);
    /// let inst = twgraph::gen::with_random_weights(&g, 20, 5);
    /// let session = Session::decompose(&g, 3, 5).unwrap();
    /// let server = session
    ///     .serve_net(&inst, ServeConfig::default(), ("127.0.0.1", 0), ServdConfig::default())
    ///     .unwrap();
    /// let mut client = Client::connect(server.local_addr()).unwrap();
    /// let d = client.distance(0, 79).unwrap();
    /// assert_eq!(d, twgraph::alg::dijkstra(&inst, 0).dist[79]);
    /// server.shutdown();
    /// ```
    pub fn serve_net(
        &self,
        inst: &MultiDigraph,
        cfg: ServeConfig,
        addr: impl std::net::ToSocketAddrs,
        net_cfg: ServdConfig,
    ) -> Result<Server, NetServeError> {
        let store = self.build_store(inst, &cfg)?;
        let engine = std::sync::Arc::new(VersionedEngine::new(store, cfg));
        Ok(Server::spawn(engine, addr, net_cfg)?)
    }

    /// Exact SSSP distances from `src` (label construction + decode).
    pub fn sssp(&self, inst: &MultiDigraph, src: u32) -> Vec<Dist> {
        let labels = self.labels(inst);
        distlabel::sssp_centralized(&labels, src)
    }

    /// Exact maximum matching of a bipartite instance (Theorem 4).
    pub fn max_matching(
        &self,
        inst: &twgraph::gen::BipartiteInstance,
        mode: bmatch::MatchMode,
    ) -> Result<bmatch::MatchingOutcome, CongestError> {
        bmatch::max_matching(inst, &self.td, &self.info, mode)
    }

    /// Weighted undirected girth (Theorem 5).
    pub fn girth_undirected(&self, inst: &MultiDigraph, seed: u64) -> Result<Dist, CongestError> {
        let cfg = girth::GirthConfig::practical(self.graph.n(), seed);
        Ok(girth::girth_undirected(inst, &self.td, &self.info, &cfg)?.girth)
    }

    /// Weighted directed girth (§7 first reduction).
    pub fn girth_directed(&self, inst: &MultiDigraph) -> Dist {
        let labels = self.labels(inst);
        girth::girth_directed_from_labels(inst, &labels)
    }

    /// Open a dynamic session over `inst`: a maintained incremental
    /// labeling plus an epoch-versioned serving engine, so edge batches
    /// can be applied while queries keep flowing. Uses this session's
    /// settled width guess as the rebuild `t0`.
    pub fn dynamic(
        &self,
        inst: &MultiDigraph,
        seed: u64,
        cfg: ServeConfig,
    ) -> Result<DynamicSession, UpdateError> {
        assert_eq!(inst.n(), self.graph.n());
        DynamicSession::open(inst, self.t_used, seed, cfg)
    }
}

/// What went wrong bringing a store up behind a socket: the serving
/// side (label compaction / engine build) or the network side (bind,
/// listen).
#[derive(Debug)]
pub enum NetServeError {
    /// Label compaction or engine construction failed.
    Serve(ServeError),
    /// Binding or configuring the listening socket failed.
    Io(std::io::Error),
}

impl std::fmt::Display for NetServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetServeError::Serve(e) => write!(f, "network serving setup failed: {e}"),
            NetServeError::Io(e) => write!(f, "network serving socket failed: {e}"),
        }
    }
}

impl std::error::Error for NetServeError {}

impl From<ServeError> for NetServeError {
    fn from(e: ServeError) -> Self {
        NetServeError::Serve(e)
    }
}

impl From<std::io::Error> for NetServeError {
    fn from(e: std::io::Error) -> Self {
        NetServeError::Io(e)
    }
}

/// What went wrong while applying or publishing an update: either the
/// label-maintenance side (re-decomposition) or the serving side (store
/// recompaction).
#[derive(Debug)]
pub enum UpdateError {
    /// Scoped or fallback re-decomposition failed.
    Decomp(DecompError),
    /// Store rebuild or publish failed.
    Serve(ServeError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Decomp(e) => write!(f, "update decomposition failed: {e}"),
            UpdateError::Serve(e) => write!(f, "update publish failed: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Decomp(e) => Some(e),
            UpdateError::Serve(e) => Some(e),
        }
    }
}

impl From<DecompError> for UpdateError {
    fn from(e: DecompError) -> Self {
        UpdateError::Decomp(e)
    }
}

impl From<ServeError> for UpdateError {
    fn from(e: ServeError) -> Self {
        UpdateError::Serve(e)
    }
}

/// A dynamic-graph session: a maintained [`DynamicLabeling`] paired with
/// an epoch-versioned [`VersionedEngine`].
/// [`apply_updates`](DynamicSession::apply_updates) is the whole
/// lifecycle — apply the
/// batch incrementally (dirty-subtree relabeling, full-rebuild fallback on
/// component splits/merges), then publish the next serving epoch with
/// clean shards shared and hot cache pairs carried. Readers holding a
/// [`labelserve::Epoch`] snapshot keep their version for as long as they
/// keep the `Arc`.
///
/// ```
/// use lowtw::prelude::*;
///
/// let g = twgraph::gen::banded_path(80, 2);
/// let inst = twgraph::gen::with_random_weights(&g, 9, 4);
/// let session = Session::decompose(&g, 3, 4).unwrap();
/// let mut dyn_session = session.dynamic(&inst, 4, ServeConfig::default()).unwrap();
///
/// let d_before = dyn_session.engine().distance(0, 79).unwrap();
/// let (report, stats) = dyn_session
///     .apply_updates(&EdgeBatch::new().insert(0, 79, 1))
///     .unwrap();
/// assert!(!report.dirty.is_empty() && stats.epoch == 1);
/// assert!(dyn_session.engine().distance(0, 79).unwrap() <= d_before.min(1));
/// ```
pub struct DynamicSession {
    labeling: DynamicLabeling,
    engine: VersionedEngine,
}

impl DynamicSession {
    /// Build the labeling and serve it as epoch 0.
    pub fn open(
        inst: &MultiDigraph,
        t0: u64,
        seed: u64,
        cfg: ServeConfig,
    ) -> Result<Self, UpdateError> {
        let labeling = DynamicLabeling::build(inst, t0, seed)?;
        let engine = VersionedEngine::from_labeling(&labeling, cfg)?;
        Ok(DynamicSession { labeling, engine })
    }

    /// The maintained labeling (current graph, components, labels).
    pub fn labeling(&self) -> &DynamicLabeling {
        &self.labeling
    }

    /// The versioned serving engine (snapshot it to pin an epoch).
    pub fn engine(&self) -> &VersionedEngine {
        &self.engine
    }

    /// Apply an edge batch incrementally and publish the next epoch.
    /// Queries against [`engine`](Self::engine) are served continuously
    /// throughout — off the previous epoch until the publish swap, off the
    /// new one after.
    pub fn apply_updates(
        &mut self,
        batch: &EdgeBatch,
    ) -> Result<(UpdateReport, PublishStats), UpdateError> {
        let report = self.labeling.apply(batch)?;
        let stats = self.engine.publish_from(&self.labeling, &report.dirty)?;
        Ok((report, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_end_to_end() {
        let g = twgraph::gen::partial_ktree(120, 3, 0.7, 3);
        let inst = twgraph::gen::with_random_weights(&g, 50, 3);
        let session = Session::decompose(&g, 4, 3).unwrap();
        session.td.verify(&g).unwrap();
        let d = session.sssp(&inst, 0);
        assert_eq!(d, twgraph::alg::dijkstra(&inst, 0).dist);
    }

    #[test]
    fn session_distributed_decomposition() {
        let g = twgraph::gen::banded_path(100, 2);
        let (session, rounds) = Session::decompose_distributed(&g, 3, 5).unwrap();
        session.td.verify(&g).unwrap();
        assert!(rounds > 0);
    }

    #[test]
    fn session_serve_engine_matches_decode() {
        let g = twgraph::gen::banded_path(60, 2);
        let inst = twgraph::gen::with_random_weights(&g, 9, 4);
        let session = Session::decompose(&g, 3, 4).unwrap();
        let labels = session.labels(&inst);
        let engine = session
            .serve(
                &inst,
                ServeConfig {
                    shard_size: 16,
                    cache_capacity: 32,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        for u in (0..60u32).step_by(7) {
            for v in (0..60u32).step_by(5) {
                assert_eq!(
                    engine.distance(u, v).unwrap(),
                    decode(&labels[u as usize], &labels[v as usize]),
                    "serve({u}, {v}) diverged from label decode"
                );
            }
        }
        assert!(engine.store().shard_count() >= 3);
        assert_eq!(
            engine.distance(60, 0),
            Err(ServeError::UnknownNode { node: 60, n: 60 })
        );
    }

    #[test]
    fn dynamic_session_applies_and_publishes() {
        let g = twgraph::gen::partial_ktree(90, 2, 0.7, 6);
        let inst = twgraph::gen::with_random_weights(&g, 12, 6);
        let session = Session::decompose(&g, 3, 6).unwrap();
        let mut ds = session
            .dynamic(
                &inst,
                6,
                ServeConfig {
                    shard_size: 16,
                    cache_capacity: 32,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        assert_eq!(ds.engine().epoch(), 0);
        let pinned = ds.engine().snapshot();
        let (report, stats) = ds
            .apply_updates(&EdgeBatch::new().insert(0, 89, 1).delete(0, 1))
            .unwrap();
        assert!(!report.dirty.is_empty());
        assert_eq!(stats.epoch, 1);
        assert_eq!(ds.engine().epoch(), 1);
        // The current epoch answers Dijkstra on the *mutated* instance.
        let want = twgraph::alg::dijkstra(ds.labeling().inst(), 0).dist;
        for v in (0..90u32).step_by(9) {
            assert_eq!(ds.engine().distance(0, v).unwrap(), want[v as usize]);
        }
        // The pinned snapshot still answers the pre-update graph.
        let old = twgraph::alg::dijkstra(&inst, 0).dist;
        assert_eq!(pinned.distance(0, 89).unwrap(), old[89]);
    }

    #[test]
    fn session_girth_and_matching() {
        let g = twgraph::gen::cycle(16);
        let inst = twgraph::gen::with_random_weights(&g, 4, 1);
        let session = Session::decompose(&g, 3, 1).unwrap();
        let want = baselines::girth_exact_centralized(&inst);
        assert_eq!(session.girth_undirected(&inst, 9).unwrap(), want);

        let (bg, side) = twgraph::gen::bipartite_banded(15, 15, 2, 0.5, 2);
        let bi = twgraph::gen::BipartiteInstance::new(bg.clone(), side.clone());
        let bs = Session::decompose(&bg, 3, 2).unwrap();
        let out = bs
            .max_matching(&bi, bmatch::MatchMode::Centralized)
            .unwrap();
        let want = baselines::matching_size(&baselines::hopcroft_karp(&bg, &side));
        assert_eq!(out.size(), want);
    }
}
