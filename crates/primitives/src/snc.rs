//! SNC — one-round neighbourhood communication (paper Appendix A.1).
//!
//! A trivially thin wrapper over one engine superstep, named to keep the
//! correspondence with the paper's task vocabulary explicit.

use congest_sim::{CongestError, Inbox, Network, WireMsg};

/// Execute one SNC: every node sends `build(v, state)` messages to
/// neighbours and absorbs its inbox with `absorb`. Returns the rounds
/// charged (1 unless messages exceed the per-edge word budget).
pub fn exchange<S, M>(
    net: &mut Network,
    states: &mut [S],
    build: impl Fn(u32, &S) -> Vec<(u32, M)> + Sync,
    absorb: impl Fn(u32, &mut S, Inbox<'_, M>) + Sync,
) -> Result<u64, CongestError>
where
    S: Send + Sync,
    M: WireMsg,
{
    net.superstep(states, build, absorb)
}

/// Convenience SNC: every node learns each neighbour's value of `value(v)`.
/// Returns, per node, the `(neighbor, value)` pairs (sorted by neighbour).
pub fn share_with_neighbors<V>(
    net: &mut Network,
    value: impl Fn(u32) -> V + Sync,
) -> Result<Vec<Vec<(u32, V)>>, CongestError>
where
    V: WireMsg + Sync + std::fmt::Debug,
{
    let g = net.graph_handle();
    let mut states: Vec<Vec<(u32, V)>> = vec![Vec::new(); net.n()];
    net.superstep(
        &mut states,
        |u, _s| {
            let mine = value(u);
            g.neighbors(u).iter().map(|&v| (v, mine.clone())).collect()
        },
        |_v, s, inbox| {
            *s = inbox.into_iter().collect();
        },
    )?;
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{Network, NetworkConfig};
    use twgraph::gen::cycle;

    #[test]
    fn neighbors_learn_values() {
        let g = cycle(5);
        let mut net = Network::new(g, NetworkConfig::default());
        let got = share_with_neighbors(&mut net, |v| v as u64 * 10).unwrap();
        assert_eq!(got[0], vec![(1, 10), (4, 40)]);
        assert_eq!(net.metrics().rounds, 1);
    }

    #[test]
    fn exchange_is_single_round_for_single_words() {
        let g = cycle(4);
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let mut states = vec![0u64; 4];
        let r = exchange(
            &mut net,
            &mut states,
            |u, _| g.neighbors(u).iter().map(|&v| (v, 1u32)).collect(),
            |_, s, inbox| *s = inbox.len() as u64,
        )
        .unwrap();
        assert_eq!(r, 1);
        assert!(states.iter().all(|&c| c == 2));
    }
}
