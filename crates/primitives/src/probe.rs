//! Per-vertex structure probes: closed-walk diagonals and bounded hop
//! distances, gathered by shared-superstep message passing.
//!
//! Both probes are batched single-source relays in the PA/SNC spirit:
//! every active vertex is simultaneously the origin of its own relay, the
//! per-superstep payload is the node's accumulated origin table, and the
//! cost is measured honestly by the simulator (words = table entries that
//! actually move). They feed the counting and FO scenario pipelines:
//!
//! * [`closed_walk_spectrum`] — `k` relay supersteps compute the diagonal
//!   walk counts `(Aᵏ)_vv` of the active subgraph's adjacency matrix, the
//!   raw material for trace-based cycle counting (tr A³, tr A⁴, tr A⁵
//!   with inclusion–exclusion over the shorter degenerate walks).
//! * [`bounded_hop_distances`] — a radius-gated multi-origin BFS flood
//!   giving every vertex its ≤ r hop-distance table, the data behind the
//!   `dist(x, y) ≤ k` atoms of the FO pipeline.

use congest_sim::{CongestError, Network, WireMsg};
use std::collections::BTreeMap;

/// One vertex's walk diagnostics from [`closed_walk_spectrum`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkSpectrum {
    /// The vertex (original network id).
    pub v: u32,
    /// Degree within the active subgraph.
    pub degree: u64,
    /// `diag[k-1] = (Aᵏ)_vv` — closed walks of length `k` at `v`,
    /// for `k = 1..=kmax` over the active subgraph's adjacency matrix.
    pub diag: Vec<u64>,
}

#[derive(Clone, Debug)]
struct CountMsg(Vec<(u32, u64)>);

impl WireMsg for CountMsg {
    fn words(&self) -> u64 {
        2 * self.0.len() as u64
    }
}

#[derive(Clone, Debug)]
struct WalkState {
    /// `counts[origin]` = walks of the current length from `origin` here.
    counts: BTreeMap<u32, u64>,
    diag: Vec<u64>,
}

/// Closed-walk diagonals of the subgraph induced by `active` (sorted,
/// unique): after `kmax` relay supersteps, vertex `v` knows
/// `(A¹)_vv … (A^kmax)_vv`. Each superstep every vertex forwards its full
/// origin table to every active neighbor and replaces it by the sum of
/// the received tables — the textbook matrix-power recurrence, executed
/// and charged as messages.
pub fn closed_walk_spectrum(
    net: &mut Network,
    active: &[u32],
    kmax: usize,
) -> Result<Vec<WalkSpectrum>, CongestError> {
    let g = net.graph_handle();
    let in_active = |v: u32| active.binary_search(&v).is_ok();
    let mut states: Vec<WalkState> = active
        .iter()
        .map(|&v| WalkState {
            counts: BTreeMap::from([(v, 1u64)]),
            diag: Vec::new(),
        })
        .collect();
    for _ in 0..kmax {
        let g_ref = &g;
        net.superstep_on(
            active,
            &mut states,
            |u, s: &WalkState| {
                let table: Vec<(u32, u64)> = s.counts.iter().map(|(&o, &c)| (o, c)).collect();
                if table.is_empty() {
                    return Vec::new();
                }
                g_ref
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| in_active(w))
                    .map(|&w| (w, CountMsg(table.clone())))
                    .collect()
            },
            |v, s, inbox| {
                let mut acc: BTreeMap<u32, u64> = BTreeMap::new();
                for (_, CountMsg(table)) in inbox {
                    for (o, c) in table {
                        *acc.entry(o).or_insert(0) += c;
                    }
                }
                s.diag.push(acc.get(&v).copied().unwrap_or(0));
                s.counts = acc;
            },
        )?;
    }
    Ok(active
        .iter()
        .zip(&states)
        .map(|(&v, s)| WalkSpectrum {
            v,
            degree: g.neighbors(v).iter().filter(|&&w| in_active(w)).count() as u64,
            diag: s.diag.clone(),
        })
        .collect())
}

#[derive(Clone, Debug)]
struct HopMsg(Vec<(u32, u32)>);

impl WireMsg for HopMsg {
    fn words(&self) -> u64 {
        2 * self.0.len() as u64
    }
}

#[derive(Clone, Debug)]
struct HopState {
    /// `known[origin]` = hop distance (≤ radius) from `origin` here.
    known: BTreeMap<u32, u32>,
    /// Entries discovered in the last superstep, pending propagation.
    fresh: Vec<(u32, u32)>,
}

/// Bounded multi-origin BFS on the subgraph induced by `active` (sorted,
/// unique): every active vertex floods its id outward for `radius` hops;
/// the result, positionally aligned with `active`, holds each vertex's
/// sorted `(origin, hop_distance)` table with every distance ≤ `radius`
/// (the self entry `(v, 0)` included). Frontier entries at the radius are
/// not forwarded, so the flood quiesces in `radius` supersteps.
pub fn bounded_hop_distances(
    net: &mut Network,
    active: &[u32],
    radius: u32,
) -> Result<Vec<Vec<(u32, u32)>>, CongestError> {
    let g = net.graph_handle();
    let in_active = |v: u32| active.binary_search(&v).is_ok();
    let mut states: Vec<HopState> = active
        .iter()
        .map(|&v| HopState {
            known: BTreeMap::from([(v, 0u32)]),
            fresh: vec![(v, 0)],
        })
        .collect();
    let g_ref = &g;
    net.run_until_quiet_on(
        active,
        &mut states,
        |u, s: &HopState| {
            let payload: Vec<(u32, u32)> = s
                .fresh
                .iter()
                .copied()
                .filter(|&(_, d)| d < radius)
                .collect();
            if payload.is_empty() {
                return Vec::new();
            }
            g_ref
                .neighbors(u)
                .iter()
                .filter(|&&w| in_active(w))
                .map(|&w| (w, HopMsg(payload.clone())))
                .collect()
        },
        |_v, s, inbox| {
            s.fresh.clear();
            for (_, HopMsg(entries)) in inbox {
                for (o, d) in entries {
                    let nd = d + 1;
                    if let std::collections::btree_map::Entry::Vacant(slot) = s.known.entry(o) {
                        slot.insert(nd);
                        s.fresh.push((o, nd));
                    }
                }
            }
            s.fresh.sort_unstable();
            s.fresh.dedup();
        },
        u64::from(radius) + 2,
    )?;
    Ok(states
        .into_iter()
        .map(|s| s.known.into_iter().collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::NetworkConfig;
    use twgraph::alg::bfs_dist;
    use twgraph::gen::{cycle, grid, path};
    use twgraph::UGraph;

    /// Centralized reference: diag of A^k by repeated matrix-vector
    /// products on the induced subgraph.
    fn diag_ref(g: &UGraph, active: &[u32], kmax: usize) -> Vec<Vec<u64>> {
        let pos = |v: u32| active.binary_search(&v).ok();
        let k_n = active.len();
        let mut out = vec![Vec::new(); k_n];
        for (i, &src) in active.iter().enumerate() {
            let mut vec_cur = vec![0u64; k_n];
            vec_cur[i] = 1;
            for _ in 0..kmax {
                let mut next = vec![0u64; k_n];
                for (j, &v) in active.iter().enumerate() {
                    if vec_cur[j] == 0 {
                        continue;
                    }
                    for &w in g.neighbors(v) {
                        if let Some(p) = pos(w) {
                            next[p] += vec_cur[j];
                        }
                    }
                }
                vec_cur = next;
                out[i].push(vec_cur[i]);
            }
            let _ = src;
        }
        out
    }

    #[test]
    fn spectrum_matches_matrix_powers() {
        for g in [cycle(7), grid(3, 4), path(6)] {
            let active: Vec<u32> = (0..g.n() as u32).collect();
            let mut net = Network::new(g.clone(), NetworkConfig::default());
            let got = closed_walk_spectrum(&mut net, &active, 5).unwrap();
            let want = diag_ref(&g, &active, 5);
            for (i, spec) in got.iter().enumerate() {
                assert_eq!(spec.diag, want[i], "vertex {}", active[i]);
                assert_eq!(spec.diag[0], 0, "no self loops: (A¹)_vv = 0");
                assert_eq!(spec.diag[1], spec.degree, "(A²)_vv = degree");
            }
            assert!(net.metrics().messages > 0, "the relay must be charged");
        }
    }

    #[test]
    fn spectrum_respects_the_active_restriction() {
        // Cycle of 6 restricted to half: the induced path 0-1-2-3 has no
        // closed odd walks and path-like even diagonals.
        let g = cycle(6);
        let active = [0u32, 1, 2, 3];
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let got = closed_walk_spectrum(&mut net, &active, 4).unwrap();
        let want = diag_ref(&g, &active, 4);
        for (i, spec) in got.iter().enumerate() {
            assert_eq!(spec.diag, want[i]);
            assert_eq!(spec.diag[0], 0);
            assert_eq!(spec.diag[2], 0, "paths have no closed 3-walks");
        }
        assert_eq!(got[0].degree, 1, "vertex 0 keeps only neighbor 1");
    }

    #[test]
    fn hop_distances_match_truncated_bfs() {
        let g = grid(3, 5);
        let active: Vec<u32> = (0..g.n() as u32).collect();
        let radius = 3;
        let mut net = Network::new(g.clone(), NetworkConfig::default());
        let got = bounded_hop_distances(&mut net, &active, radius).unwrap();
        for (i, table) in got.iter().enumerate() {
            let v = active[i];
            for &(o, d) in table {
                assert_eq!(d, bfs_dist(&g, o)[v as usize], "{o} → {v}");
                assert!(d <= radius);
            }
            // Completeness: every vertex within the radius appears.
            for o in 0..g.n() as u32 {
                let true_d = bfs_dist(&g, o)[v as usize];
                assert_eq!(
                    table.iter().any(|&(x, _)| x == o),
                    true_d <= radius,
                    "{o} → {v}: table membership must mirror d ≤ {radius}"
                );
            }
        }
    }

    #[test]
    fn hop_distances_radius_zero_is_self_only() {
        let g = path(4);
        let active: Vec<u32> = (0..4).collect();
        let mut net = Network::new(g, NetworkConfig::default());
        let got = bounded_hop_distances(&mut net, &active, 0).unwrap();
        for (i, table) in got.iter().enumerate() {
            assert_eq!(table, &vec![(active[i], 0)]);
        }
    }

    #[test]
    fn hop_flood_stays_inside_the_active_set() {
        // Path 0-1-2-3-4-5 with only {0, 1, 4, 5} active: the gap at
        // {2, 3} splits the flood, so 0 never learns about 4.
        let g = path(6);
        let active = [0u32, 1, 4, 5];
        let mut net = Network::new(g, NetworkConfig::default());
        let got = bounded_hop_distances(&mut net, &active, 5).unwrap();
        assert_eq!(got[0], vec![(0, 0), (1, 1)]);
        assert_eq!(got[2], vec![(4, 0), (5, 1)]);
    }
}
