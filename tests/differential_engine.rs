//! Differential lockdown of the superstep engine's charged semantics.
//!
//! Every case runs a full distributed pipeline (SSSP, distance labeling,
//! girth, matching, stateful walks) on a fixed corpus of families and
//! seeds, captures the engine's `Metrics` after each stage, and compares
//! them **bit for bit** against golden records under `tests/golden/`.
//! Any refactor of `congest_sim` that silently changes the charged rounds,
//! words, message counts or per-edge congestion fails this suite.
//!
//! Regenerate the goldens (only when the cost model itself is *meant* to
//! change, with review) via:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test differential_engine
//! ```

use lowtw::prelude::*;
use lowtw::{baselines, bmatch, distlabel, girth, stateful_walks, treedec, twgraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use stateful_walks::{CdlLabeling, ColoredWalk, StatefulConstraint};

/// One canonical JSON line per captured measurement. Field order is fixed
/// so the string comparison is exact.
fn metrics_line(case: &str, stage: &str, m: &congest_sim::Metrics) -> String {
    format!(
        "{{\"case\":\"{case}\",\"stage\":\"{stage}\",\"rounds\":{},\"supersteps\":{},\"messages\":{},\"words\":{},\"max_edge_words\":{},\"charged_rounds\":{}}}",
        m.rounds, m.supersteps, m.messages, m.words, m.max_edge_words_in_superstep, m.charged_rounds
    )
}

fn value_line(case: &str, stage: &str, fields: &[(&str, u64)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!(
        "{{\"case\":\"{case}\",\"stage\":\"{stage}\",{}}}",
        body.join(",")
    )
}

/// Full distributed SSSP pipeline on one net: tree decomposition →
/// distance labeling → one label-broadcast query. Captures the cumulative
/// metrics after every stage plus a correctness check against Dijkstra.
fn sssp_case(
    name: &str,
    g: &UGraph,
    inst: &MultiDigraph,
    t0: u64,
    seed: u64,
    src: u32,
) -> Vec<String> {
    let mut lines = Vec::new();
    let mut net = Network::new(g.clone(), NetworkConfig::default());
    let cfg = lowtw::SepConfig::practical(g.n());
    let mut rng = SmallRng::seed_from_u64(seed);

    let out = treedec::decompose_distributed(&mut net, t0, &cfg, &mut rng).unwrap();
    out.td.verify(g).unwrap();
    lines.push(metrics_line(name, "decompose", net.metrics()));

    let (labels, _) =
        distlabel::build_labels_distributed(&mut net, inst, &out.td, &out.info).unwrap();
    lines.push(metrics_line(name, "label", net.metrics()));

    let (dists, _) = distlabel::sssp_distributed(&mut net, &labels, src).unwrap();
    assert_eq!(
        dists,
        twgraph::alg::dijkstra(inst, src).dist,
        "{name}: sssp incorrect"
    );
    lines.push(metrics_line(name, "query", net.metrics()));
    lines
}

/// Directed girth from labels, measured on its own net.
fn girth_directed_case(name: &str, g: &UGraph, inst: &MultiDigraph, seed: u64) -> Vec<String> {
    let session = Session::decompose(g, 3, seed).unwrap();
    let labels = session.labels(inst);
    let mut net = Network::new(g.clone(), NetworkConfig::default());
    let (girth_val, _) = girth::girth_directed_distributed(&mut net, inst, &labels).unwrap();
    let mut lines = vec![metrics_line(name, "query", net.metrics())];
    lines.push(value_line(
        name,
        "result",
        &[(
            "girth",
            if girth_val >= INF {
                u64::MAX
            } else {
                girth_val
            },
        )],
    ));
    lines
}

/// Probabilistic undirected girth with one representative trial charged
/// through the virtual product network.
fn girth_undirected_case(name: &str, g: &UGraph, wmax: u64, seed: u64) -> Vec<String> {
    let inst = twgraph::gen::with_random_weights(g, wmax, seed);
    let want = baselines::girth_exact_centralized(&inst);
    let session = Session::decompose(g, 3, seed).unwrap();
    let cfg = girth::GirthConfig {
        trials_per_c: 2,
        seed,
        measure_distributed: true,
    };
    let run = girth::girth_undirected(&inst, &session.td, &session.info, &cfg).unwrap();
    assert!(run.girth >= want, "{name}: girth underestimated");
    vec![value_line(
        name,
        "result",
        &[
            (
                "girth",
                if run.girth >= INF {
                    u64::MAX
                } else {
                    run.girth
                },
            ),
            ("trials", run.trials as u64),
            ("rounds_per_trial", run.rounds_per_trial),
            ("rounds_total", run.rounds_total),
        ],
    )]
}

/// Distance-labeling pipeline measured on its own: decomposition + label
/// build, plus the label-size statistics (the Theorem-2 Õ(τ·depth) space
/// figure) and a decode checksum differentially verified against Dijkstra.
fn distlabel_case(name: &str, g: &UGraph, inst: &MultiDigraph, t0: u64, seed: u64) -> Vec<String> {
    let mut lines = Vec::new();
    let mut net = Network::new(g.clone(), NetworkConfig::default());
    let cfg = lowtw::SepConfig::practical(g.n());
    let mut rng = SmallRng::seed_from_u64(seed);
    let out = treedec::decompose_distributed(&mut net, t0, &cfg, &mut rng).unwrap();
    let (labels, _) =
        distlabel::build_labels_distributed(&mut net, inst, &out.td, &out.info).unwrap();
    lines.push(metrics_line(name, "label", net.metrics()));
    let words: Vec<u64> = labels.iter().map(|l| l.words() as u64).collect();
    let mut checksum = 0u64;
    for u in (0..g.n()).step_by(7) {
        let truth = baselines::sssp_oracle(inst, u as u32);
        for v in (0..g.n()).step_by(3) {
            let got = decode(&labels[u], &labels[v]);
            assert_eq!(got, truth[v], "{name}: decode({u}, {v}) incorrect");
            checksum = checksum.rotate_left(7) ^ got;
        }
    }
    lines.push(value_line(
        name,
        "labels",
        &[
            ("words_total", words.iter().sum()),
            ("words_max", *words.iter().max().unwrap()),
            ("decode_checksum", checksum),
        ],
    ));
    lines
}

/// Stateful-walk pipeline: distributed CDL(C_col) construction through the
/// charged virtual product network, verified against product Dijkstra and
/// locked by the virtual execution's metrics.
fn walks_case(name: &str, g: &UGraph, colors: u32, wmax: u64, t0: u64, seed: u64) -> Vec<String> {
    let inst = twgraph::gen::with_colored_weights(g, wmax, colors, seed);
    let cfg = lowtw::SepConfig::practical(g.n());
    let mut rng = SmallRng::seed_from_u64(seed);
    let out = treedec::decompose_centralized(g, t0, &cfg, &mut rng).unwrap();
    let c = ColoredWalk { colors };
    let (cdl, metrics) =
        CdlLabeling::build_distributed(&inst, &c, &out.td, &out.info, NetworkConfig::default())
            .unwrap();
    let mut checksum = 0u64;
    for s in (0..g.n() as u32).step_by(5) {
        let truth = baselines::constrained_sssp_oracle(&inst, &c, s);
        for t in 0..g.n() as u32 {
            for q in 0..c.n_states() as stateful_walks::StateId {
                let got = cdl.dist(s, t, q);
                assert_eq!(
                    got, truth[t as usize][q as usize],
                    "{name}: {s}→{t} state {q}"
                );
                checksum = checksum.rotate_left(9) ^ got;
            }
        }
    }
    vec![
        metrics_line(name, "cdl", &metrics),
        value_line(name, "result", &[("dist_checksum", checksum)]),
    ]
}

/// Separator-hierarchy matching with every augmentation charged through
/// the virtual CDL network.
fn matching_case(name: &str, nl: usize, nr: usize, band: usize, p: f64, seed: u64) -> Vec<String> {
    let (g, side) = twgraph::gen::bipartite_banded(nl, nr, band, p, seed);
    let inst = twgraph::gen::BipartiteInstance::new(g.clone(), side.clone());
    let session = Session::decompose(&g, 3, seed).unwrap();
    let out = session
        .max_matching(&inst, bmatch::MatchMode::Distributed)
        .unwrap();
    let want = baselines::matching_size(&baselines::hopcroft_karp(&g, &side));
    assert_eq!(out.size(), want, "{name}: matching not maximum");
    vec![value_line(
        name,
        "result",
        &[
            ("size", out.size() as u64),
            ("augmentations", out.augmentations as u64),
            ("attempts", out.attempts as u64),
            ("rounds", out.rounds),
        ],
    )]
}

/// The fixed corpus. Families and seeds chosen to cover every pipeline,
/// both sparse and denser regimes, trees, and the virtual-network path.
fn run_corpus() -> Vec<String> {
    let mut lines = Vec::new();

    // --- SSSP pipelines -------------------------------------------------
    {
        let g = twgraph::gen::partial_ktree(96, 2, 0.7, 11);
        let inst = twgraph::gen::with_random_weights(&g, 30, 11);
        lines.extend(sssp_case("sssp/partial_ktree_96_2", &g, &inst, 3, 11, 5));
    }
    {
        let g = twgraph::gen::partial_ktree(150, 3, 0.7, 21);
        let inst = twgraph::gen::with_random_weights(&g, 50, 21);
        lines.extend(sssp_case("sssp/partial_ktree_150_3", &g, &inst, 4, 21, 42));
    }
    {
        let g = twgraph::gen::banded_path(120, 3);
        let inst = twgraph::gen::with_random_weights(&g, 12, 4);
        lines.extend(sssp_case("sssp/banded_path_120_3", &g, &inst, 4, 4, 17));
    }
    {
        let g = twgraph::gen::random_tree(90, 6);
        let inst = twgraph::gen::with_random_weights(&g, 9, 6);
        lines.extend(sssp_case("sssp/random_tree_90", &g, &inst, 2, 6, 0));
    }

    // --- Distance-labeling pipelines ------------------------------------
    {
        let g = twgraph::gen::series_parallel(64, 31);
        let inst = twgraph::gen::with_random_weights(&g, 20, 31);
        lines.extend(distlabel_case(
            "distlabel/series_parallel_64",
            &g,
            &inst,
            3,
            31,
        ));
    }
    {
        let g = twgraph::gen::ring_of_cliques(6, 4);
        let inst = twgraph::gen::with_heavy_tailed_weights(&g, 400, 1.2, 32);
        lines.extend(distlabel_case(
            "distlabel/ring_cliques_6x4_heavy",
            &g,
            &inst,
            5,
            32,
        ));
    }

    // --- Stateful-walk pipelines ----------------------------------------
    lines.extend(walks_case(
        "walks/cactus_36",
        &twgraph::gen::cactus(36, 33),
        2,
        9,
        3,
        33,
    ));
    lines.extend(walks_case(
        "walks/halin_30",
        &twgraph::gen::halin(30, 34),
        3,
        5,
        4,
        34,
    ));

    // --- Girth pipelines ------------------------------------------------
    {
        let g = twgraph::gen::partial_ktree(60, 2, 0.7, 13);
        let inst = twgraph::gen::random_orientation(&g, 9, 0.4, 13);
        lines.extend(girth_directed_case("girth/directed_pk_60_2", &g, &inst, 13));
    }
    lines.extend(girth_undirected_case(
        "girth/undirected_cycle_20",
        &twgraph::gen::cycle(20),
        5,
        15,
    ));

    // --- Matching pipeline ----------------------------------------------
    // Large enough that the decomposition has internal separator nodes, so
    // augmentations actually run through the charged virtual CDL network.
    lines.extend(matching_case("matching/banded_26_26", 26, 26, 1, 0.45, 2));

    lines
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/engine_metrics.jsonl")
}

#[test]
fn metrics_match_seed_engine_goldens() {
    let got = run_corpus();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got.join("\n") + "\n").unwrap();
        eprintln!("wrote {} golden lines to {}", got.len(), path.display());
        return;
    }
    let want_raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test differential_engine`",
            path.display()
        )
    });
    let want: Vec<&str> = want_raw.lines().collect();
    for (i, (g, w)) in got
        .iter()
        .map(String::as_str)
        .zip(want.iter().copied())
        .enumerate()
    {
        assert_eq!(g, w, "golden line {} diverged from the seed engine", i + 1);
    }
    assert_eq!(got.len(), want.len(), "golden line count changed");
}
