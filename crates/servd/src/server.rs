//! The serving front-end: a TCP listener fanning out to
//! thread-per-connection readers and workers over a shared
//! [`VersionedEngine`].
//!
//! ## Connection anatomy
//!
//! Each accepted connection gets **two** threads joined by a *bounded*
//! request queue:
//!
//! ```text
//! socket ──read──▶ reader ──try_send──▶ [queue ≤ depth] ──▶ worker ──write──▶ socket
//!                    │ full: OVERLOADED response                │
//!                    │ malformed: MALFORMED response            │
//!                    └───────────── shared writer mutex ────────┘
//! ```
//!
//! The reader parses frames and *admits* them; admission can fail three
//! ways, each answered immediately with a typed error instead of
//! back-pressuring the socket: the queue is full (`OVERLOADED` — the
//! client should retry or slow down), the batch exceeds the admission cap
//! (`TOO_LARGE`), or the payload is unparseable (`MALFORMED`). A framing
//! violation (oversized or unresynchronizable frame) answers `MALFORMED`
//! with request id 0 and closes the connection — byte streams cannot be
//! resynchronized after a bad length header.
//!
//! ## Epoch pinning
//!
//! A connection pins the engine's current [`labelserve::Epoch`] snapshot at accept
//! time: every query it sends is answered at that version, however many
//! epochs are published meanwhile — a client never observes a version
//! change mid-conversation. `REPIN` moves the pin to the current epoch
//! (and answers with its number), `EPOCH` reports the pin.
//!
//! ## Graceful shutdown
//!
//! [`Server::shutdown`] stops the accept loop, tells readers to stop
//! admitting (a blocked reader wakes at its next poll tick), lets every
//! worker *drain its queue* — all admitted requests are answered and
//! flushed — then joins all threads. In-flight queries are never dropped;
//! unadmitted bytes in socket buffers are.

use crate::proto::{
    decode_request, encode_response, read_frame, FrameError, FrameEvent, ProtoError, Request,
    Response, WireError, MAX_FRAME_DEFAULT,
};
use labelserve::{ServeError, VersionedEngine};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-end knobs. Defaults are sized for the loopback bench; every
/// field is a hard limit, not a hint.
#[derive(Clone, Copy, Debug)]
pub struct ServdConfig {
    /// Bounded per-connection request queue; a full queue answers
    /// `OVERLOADED` instead of reading more slowly (admission control).
    pub queue_depth: usize,
    /// Most pairs admitted in one batch frame; larger answers `TOO_LARGE`.
    pub max_batch: usize,
    /// Most payload bytes in one frame; larger closes the connection.
    pub max_frame: usize,
    /// Poll granularity for shutdown checks in blocked reads/accepts.
    pub poll_interval_ms: u64,
    /// Fault injection: stall the worker this long per request. Zero in
    /// production; the backpressure tests use it to fill queues
    /// deterministically.
    pub worker_delay_us: u64,
}

impl Default for ServdConfig {
    fn default() -> Self {
        ServdConfig {
            queue_depth: 128,
            max_batch: 8192,
            max_frame: MAX_FRAME_DEFAULT,
            poll_interval_ms: 10,
            worker_delay_us: 0,
        }
    }
}

/// Monotone service counters (relaxed atomics — they synchronize nothing).
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    queries: AtomicU64,
    overloads: AtomicU64,
    malformed: AtomicU64,
    rejected_batches: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Frames that parsed into requests (admitted or refused).
    pub requests: u64,
    /// Individual distance queries answered (batches count per pair).
    pub queries: u64,
    /// Requests refused by the bounded queue.
    pub overloads: u64,
    /// Frames refused as malformed (payload or framing level).
    pub malformed: u64,
    /// Batches refused by the admission cap.
    pub rejected_batches: u64,
}

/// Recover a possibly-poisoned writer mutex: a frame is written with one
/// `write_all`, so the stream is either before or after a whole frame.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Serialize and send one response frame under the connection's writer
/// lock. Io failure is returned so callers can hang up.
fn send_response(writer: &Mutex<TcpStream>, req_id: u64, resp: &Response) -> io::Result<()> {
    let mut out = Vec::with_capacity(32);
    encode_response(req_id, resp, &mut out);
    let mut w = relock(writer);
    w.write_all(&out)
}

/// Map an engine failure onto the wire.
fn wire_error(e: ServeError) -> WireError {
    match e {
        ServeError::UnknownNode { node, n } => WireError::UnknownNode { node, n: n as u64 },
        // Build-side partitioning errors cannot arise from a query; keep
        // the arm total anyway so a future engine error is not a panic.
        _ => WireError::Internal,
    }
}

/// The running front-end. Dropping it shuts down gracefully (drain +
/// join); call [`shutdown`](Server::shutdown) to do the same explicitly
/// and get the final stats back.
pub struct Server {
    local_addr: SocketAddr,
    engine: Arc<VersionedEngine>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `engine`. Returns once the listener is live — queries can be sent
    /// the moment this returns.
    pub fn spawn(
        engine: Arc<VersionedEngine>,
        addr: impl ToSocketAddrs,
        cfg: ServdConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept = {
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                accept_loop(listener, engine, cfg, shutdown, counters);
            })
        };
        Ok(Server {
            local_addr,
            engine,
            shutdown,
            counters,
            accept_thread: Some(accept),
        })
    }

    /// The bound address (the actual port when spawned on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<VersionedEngine> {
        &self.engine
    }

    /// Current counter values.
    pub fn stats(&self) -> ServerStats {
        let c = &self.counters;
        ServerStats {
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            overloads: c.overloads.load(Ordering::Relaxed),
            malformed: c.malformed.load(Ordering::Relaxed),
            rejected_batches: c.rejected_batches.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, drain every admitted request, join all threads,
    /// and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accept until shutdown, then join every connection's threads (the
/// accept thread owns the connection handles, so joining it drains all).
fn accept_loop(
    listener: TcpListener,
    engine: Arc<VersionedEngine>,
    cfg: ServdConfig,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(&engine);
                let shutdown = Arc::clone(&shutdown);
                let counters = Arc::clone(&counters);
                conns.push(std::thread::spawn(move || {
                    // A connection that fails setup just hangs up; the
                    // client sees the close.
                    let _ = serve_connection(stream, engine, cfg, shutdown, counters);
                }));
                // Opportunistically reap finished connections so a
                // long-lived server does not accumulate dead handles.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(cfg.poll_interval_ms));
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(cfg.poll_interval_ms));
            }
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// One connection: spawn the worker, run the reader inline, then join the
/// worker (which drains the queue first).
fn serve_connection(
    stream: TcpStream,
    engine: Arc<VersionedEngine>,
    cfg: ServdConfig,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(cfg.poll_interval_ms.max(1))))?;
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let (tx, rx) = sync_channel::<(u64, Request)>(cfg.queue_depth.max(1));
    // Pin the serving epoch for the connection's lifetime.
    let pinned = engine.snapshot();
    let worker = {
        let writer = Arc::clone(&writer);
        let engine = Arc::clone(&engine);
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || worker_loop(rx, pinned, engine, writer, cfg, counters))
    };

    let mut reader = stream;
    let mut buf = Vec::with_capacity(256);
    loop {
        match read_frame(&mut reader, &mut buf, cfg.max_frame, || {
            shutdown.load(Ordering::SeqCst)
        }) {
            Ok(FrameEvent::Frame) => {
                counters.requests.fetch_add(1, Ordering::Relaxed);
                match decode_request(&buf) {
                    Ok((req_id, req)) => {
                        if let Request::Batch(pairs) = &req {
                            if pairs.len() > cfg.max_batch {
                                counters.rejected_batches.fetch_add(1, Ordering::Relaxed);
                                let err = WireError::BatchTooLarge {
                                    len: pairs.len() as u64,
                                    max: cfg.max_batch as u64,
                                };
                                if send_response(&writer, req_id, &Response::Err(err)).is_err() {
                                    break;
                                }
                                continue;
                            }
                        }
                        match tx.try_send((req_id, req)) {
                            Ok(()) => {}
                            Err(TrySendError::Full(_)) => {
                                counters.overloads.fetch_add(1, Ordering::Relaxed);
                                let err = WireError::Overloaded {
                                    queue_depth: cfg.queue_depth as u64,
                                };
                                if send_response(&writer, req_id, &Response::Err(err)).is_err() {
                                    break;
                                }
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err((req_id, e)) => {
                        counters.malformed.fetch_add(1, Ordering::Relaxed);
                        let err = WireError::Malformed {
                            kind: e.kind_code(),
                        };
                        if send_response(&writer, req_id, &Response::Err(err)).is_err() {
                            break;
                        }
                    }
                }
            }
            Ok(FrameEvent::Idle) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Ok(FrameEvent::Eof) => break,
            Err(FrameError::Proto(e)) => {
                // Framing is broken; report (req id 0 — the id is part of
                // the unreadable payload) and hang up.
                counters.malformed.fetch_add(1, Ordering::Relaxed);
                let kind = match e {
                    ProtoError::FrameTooLarge { .. } => e.kind_code(),
                    other => other.kind_code(),
                };
                let _ = send_response(&writer, 0, &Response::Err(WireError::Malformed { kind }));
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
    // Dropping the sender lets the worker drain what was admitted and
    // exit; every queued request is answered before the socket closes.
    drop(tx);
    let _ = worker.join();
    Ok(())
}

/// Execute admitted requests in order against the pinned epoch.
fn worker_loop(
    rx: Receiver<(u64, Request)>,
    mut pinned: Arc<labelserve::Epoch>,
    engine: Arc<VersionedEngine>,
    writer: Arc<Mutex<TcpStream>>,
    cfg: ServdConfig,
    counters: Arc<Counters>,
) {
    while let Ok((req_id, req)) = rx.recv() {
        if cfg.worker_delay_us > 0 {
            std::thread::sleep(Duration::from_micros(cfg.worker_delay_us));
        }
        let resp = match req {
            Request::Query { s, t } => {
                counters.queries.fetch_add(1, Ordering::Relaxed);
                match pinned.distance(s, t) {
                    Ok(d) => Response::Dist(d),
                    Err(e) => Response::Err(wire_error(e)),
                }
            }
            Request::Batch(pairs) => {
                counters
                    .queries
                    .fetch_add(pairs.len() as u64, Ordering::Relaxed);
                match pinned.engine().batch(&pairs) {
                    Ok(ds) => Response::Batch(ds),
                    Err(e) => Response::Err(wire_error(e)),
                }
            }
            Request::Epoch => Response::Epoch(pinned.epoch()),
            Request::Repin => {
                pinned = engine.snapshot();
                Response::Epoch(pinned.epoch())
            }
        };
        if send_response(&writer, req_id, &resp).is_err() {
            break;
        }
    }
    // Flush whatever the OS buffered before the socket drops.
    let _ = relock(&writer).flush();
}
