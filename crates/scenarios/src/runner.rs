//! Component splitting and the matrix driver.

use crate::pipeline::{all_pipelines, Pipeline};
use crate::registry::Scenario;
use crate::report::{CellError, CellReport};
use treedec::decomp::{DecompError, DecompOutcome};
use treedec::dist::DistDecompOutcome;
use twgraph::alg::components;
use twgraph::{MultiDigraph, UGraph};

/// One connected component of a scenario, with its induced instance and
/// the mapping back to original vertex ids.
pub struct Part {
    /// The component's communication graph (local ids `0..part_n`).
    pub graph: UGraph,
    /// The induced weighted instance (weights/labels/uedges preserved).
    pub inst: MultiDigraph,
    /// `old_of[local] = original` vertex id.
    pub old_of: Vec<u32>,
}

impl Part {
    /// Local id of original vertex `v`, if it lies in this part.
    pub fn local_of(&self, v: u32) -> Option<u32> {
        self.old_of.binary_search(&v).ok().map(|i| i as u32)
    }
}

/// Split `inst` (over communication graph `g`) into connected components.
/// Parts come out ordered by their smallest original vertex, so `old_of`
/// is sorted and vertex 0 lies in part 0.
pub fn split_components(g: &UGraph, inst: &MultiDigraph) -> Vec<Part> {
    let (comp, k) = components(g);
    (0..k)
        .map(|c| {
            let keep: Vec<bool> = comp.iter().map(|&x| x as usize == c).collect();
            let (graph, old_of) = g.induced(&keep);
            let (sub, old2) = inst.induced(&keep);
            debug_assert_eq!(old_of, old2);
            Part {
                graph,
                inst: sub,
                old_of,
            }
        })
        .collect()
}

/// Centralized tree decomposition of one part (the harness decomposes each
/// component independently; a decomposition of a disconnected graph does
/// not exist under the repo's connected-`G'_x` invariant). The separator
/// RNG stream is derived through the `twgraph::gen` seed rule so distinct
/// `(seed, comp)` pairs never alias (a plain `seed + comp` would collide
/// with the next scenario's component 0 under the corpus's consecutive
/// seeds).
pub fn decompose_part(
    part: &Part,
    t0: u64,
    seed: u64,
    comp: usize,
) -> Result<DecompOutcome, DecompError> {
    let cfg = treedec::SepConfig::practical(part.graph.n());
    let mut rng = twgraph::gen::derive_rng("scenario_decompose", &[comp as u64], seed);
    treedec::decompose_centralized(&part.graph, t0, &cfg, &mut rng)
}

/// Like [`decompose_part`] but charged on a CONGEST network; returns the
/// outcome and the network for subsequent stages.
pub fn decompose_part_distributed(
    part: &Part,
    t0: u64,
    seed: u64,
    comp: usize,
) -> Result<(DistDecompOutcome, congest_sim::Network), DecompError> {
    let cfg = treedec::SepConfig::practical(part.graph.n());
    let mut rng = twgraph::gen::derive_rng("scenario_decompose", &[comp as u64], seed);
    let mut net =
        congest_sim::Network::new(part.graph.clone(), congest_sim::NetworkConfig::default());
    let out = treedec::decompose_distributed(&mut net, t0, &cfg, &mut rng)?;
    Ok((out, net))
}

/// Run one cell.
pub fn run_cell(sc: &Scenario, pipeline: &dyn Pipeline) -> Result<CellReport, CellError> {
    pipeline.run(sc)
}

/// Run the full scenario × pipeline cross-product. Panics on the first
/// cell whose differential check diverges (the pipelines assert
/// internally) and propagates simulator/decomposition errors, so a clean
/// return means every cell was verified.
pub fn run_matrix(scenarios: &[Scenario]) -> Result<Vec<CellReport>, CellError> {
    let pipelines = all_pipelines();
    let mut reports = Vec::with_capacity(scenarios.len() * pipelines.len());
    for sc in scenarios {
        for p in &pipelines {
            reports.push(run_cell(sc, p.as_ref())?);
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::gen;

    #[test]
    fn split_preserves_structure() {
        let g = gen::multi_component(48, 3);
        let inst = gen::with_random_weights(&g, 9, 3);
        let parts = split_components(&g, &inst);
        assert_eq!(parts.len(), 5);
        let total_n: usize = parts.iter().map(|p| p.graph.n()).sum();
        let total_m: usize = parts.iter().map(|p| p.graph.m()).sum();
        assert_eq!(total_n, g.n());
        assert_eq!(total_m, g.m());
        // Weights survive the split.
        for part in &parts {
            assert_eq!(part.inst.comm_graph(), part.graph);
            for a in part.inst.arcs() {
                assert!((1..=9).contains(&a.weight));
            }
        }
        // Vertex 0 lands in part 0 at local id 0.
        assert_eq!(parts[0].local_of(0), Some(0));
        // The isolated vertex is a 1-vertex part.
        assert!(parts.iter().any(|p| p.graph.n() == 1));
    }

    #[test]
    fn decompose_part_valid() {
        let g = gen::series_parallel(30, 4);
        let inst = gen::with_unit_weights(&g);
        let parts = split_components(&g, &inst);
        assert_eq!(parts.len(), 1);
        let out = decompose_part(&parts[0], 3, 4, 0).unwrap();
        out.td.verify(&parts[0].graph).unwrap();
    }
}
