//! Trial drivers: the measurement bodies of the six experiments, lifted
//! out of the old ad-hoc bench bins so the `lab` bin can plan, run, and
//! gate them uniformly.
//!
//! Each driver takes one resolved [`Trial`] and returns one [`TrialRow`],
//! classifying every metric at the source: `det` for deterministic
//! charged quantities (gated exactly), `wall` for wall-clock spans
//! (gated with tolerance), `info` for derived context (never gated).

pub mod engine;
pub mod matrix;
pub mod servd;
pub mod serve;
pub mod tables;
pub mod update;

use crate::lab::plan::Trial;
use crate::lab::results::TrialRow;
use crate::lab::spec::Driver;
use std::time::Duration;

/// Run one trial through its driver.
pub fn run_trial(trial: &Trial) -> TrialRow {
    match trial.driver {
        Driver::Engine => engine::run(trial),
        Driver::Matrix => matrix::run(trial),
        Driver::Serve => serve::run(trial),
        Driver::Servd => servd::run(trial),
        Driver::Update => update::run(trial),
        Driver::Tables => tables::run(trial),
    }
}

/// Accumulates one trial's classified metrics.
pub struct RowBuilder {
    row: TrialRow,
}

impl RowBuilder {
    pub fn new(trial: &Trial) -> Self {
        RowBuilder {
            row: TrialRow {
                id: trial.id(),
                experiment: trial.experiment.clone(),
                scenario: trial.scenario.clone(),
                pipeline: trial.pipeline.clone(),
                variant: trial.variant.clone(),
                rep: trial.rep,
                det: Vec::new(),
                wall_us: Vec::new(),
                info: Vec::new(),
            },
        }
    }

    /// Keys must be unique within a row (they serialize to JSON object
    /// fields and are the gate's join key), but some sources emit one
    /// entry per component under the same name. Deterministic occurrence
    /// order makes the suffixed names stable across runs.
    fn uniqued(existing: &[(String, impl Sized)], key: String) -> String {
        let dups = existing
            .iter()
            .filter(|(k, _)| *k == key || k.starts_with(&format!("{key}#")))
            .count();
        if dups == 0 {
            key
        } else {
            format!("{key}#{}", dups + 1)
        }
    }

    /// A deterministic charged metric (gated bit-exactly).
    pub fn det(&mut self, key: impl Into<String>, v: u64) {
        let key = Self::uniqued(&self.row.det, key.into());
        self.row.det.push((key, v));
    }

    /// A wall-clock span (gated with tolerance).
    pub fn wall(&mut self, key: impl Into<String>, d: Duration) {
        self.wall_us_raw(key, d.as_micros() as u64);
    }

    /// A wall-clock span already in microseconds.
    pub fn wall_us_raw(&mut self, key: impl Into<String>, us: u64) {
        let key = Self::uniqued(&self.row.wall_us, key.into());
        self.row.wall_us.push((key, us));
    }

    /// An ungated context number (throughput, rate, speedup).
    pub fn info(&mut self, key: impl Into<String>, v: f64) {
        let key = Self::uniqued(&self.row.info, key.into());
        self.row.info.push((key, v));
    }

    pub fn finish(self) -> TrialRow {
        self.row
    }
}

/// The partial-k-tree weighted instance every non-matrix driver builds:
/// the shared `(n, k, keep, seed)` family of the old bins, deduplicated.
pub struct Instance {
    pub g: lowtw::twgraph::UGraph,
    pub inst: lowtw::twgraph::MultiDigraph,
    pub n: usize,
    pub k: usize,
    pub keep: f64,
    pub seed: u64,
}

/// Generate the trial's instance from its `n`/`k`/`keep`/`seed` params.
pub fn gen_instance(trial: &Trial, default_n: usize, default_k: usize) -> Instance {
    let n = trial.params.usize("n", default_n);
    let k = trial.params.usize("k", default_k);
    let keep = trial.params.f64("keep", 0.5);
    let seed = trial.params.u64("seed", 1);
    eprintln!("  generating partial {k}-tree, n = {n}, keep = {keep}, seed = {seed} ...");
    let g = lowtw::twgraph::gen::partial_ktree(n, k, keep, seed);
    let inst = lowtw::twgraph::gen::with_random_weights(&g, 30, seed);
    Instance {
        g,
        inst,
        n,
        k,
        keep,
        seed,
    }
}
