//! Epoch-versioning hammer: many reader threads pinned across epochs
//! while a writer keeps publishing.
//!
//! The contract under test is **snapshot isolation**: a reader that pins
//! an [`labelserve::Epoch`] keeps getting that epoch's answers — complete
//! and exact for the graph as it was at that version — no matter how many
//! publishes happen meanwhile; and the *current* epoch always answers the
//! latest graph. The writer computes each epoch's Dijkstra ground truth
//! **before** publishing it, so every answer a reader can ever observe has
//! a pre-registered oracle to be checked against. A proptest layer then
//! replays random edit sequences, pinning a snapshot per epoch and
//! re-verifying every pinned epoch after all publishes landed.

use distlabel::DynamicLabeling;
use labelserve::{ServeConfig, VersionedEngine};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use twgraph::{Dist, EdgeBatch};

const READERS: usize = 8;
const EPOCHS: u64 = 10;

/// The ground truth of one epoch: for each probe source, its full
/// Dijkstra row on that epoch's graph.
struct EpochOracle {
    rows: Vec<(u32, Vec<Dist>)>,
}

fn oracle_of(dl: &DynamicLabeling, sources: &[u32]) -> EpochOracle {
    EpochOracle {
        rows: sources
            .iter()
            .map(|&s| (s, twgraph::alg::dijkstra(dl.inst(), s).dist))
            .collect(),
    }
}

/// Deterministic per-epoch edit: walk a heavy edge across the path — each
/// epoch deletes the previous epoch's inserted edge and inserts the next,
/// so every publish really changes distances somewhere.
fn epoch_batch(e: u64, n: u32) -> EdgeBatch {
    let hop = |i: u64| ((i * 37) % u64::from(n - 1)) as u32;
    let mut b = EdgeBatch::new();
    if e > 1 {
        b = b.delete(hop(e - 1), hop(e - 1) + 1);
    }
    b.insert(hop(e), hop(e) + 1, 1 + e % 5)
}

#[test]
fn readers_pinned_across_epochs_stay_isolated() {
    let n = 160usize;
    let g = twgraph::gen::banded_path(n, 2);
    let inst = twgraph::gen::with_random_weights(&g, 11, 9);
    let mut dl = DynamicLabeling::build(&inst, 3, 9).unwrap();
    let eng = VersionedEngine::from_labeling(
        &dl,
        ServeConfig {
            shard_size: 16,
            cache_capacity: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let sources: Vec<u32> = (0..n as u32).step_by(n / 8).collect();

    // oracles[e] is registered before epoch e can ever be observed.
    let oracles = Mutex::new(vec![oracle_of(&dl, &sources)]);
    let done = AtomicBool::new(false);
    let checks = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let eng = &eng;
        let oracles = &oracles;
        let done = &done;
        let checks = &checks;
        let sources = &sources;

        for r in 0..READERS {
            scope.spawn(move || {
                let mut pinned = Vec::new();
                while !done.load(Ordering::Acquire) {
                    let snap = eng.snapshot();
                    let e = snap.epoch() as usize;
                    // Verify the snapshot against its own epoch's oracle.
                    let guard = oracles.lock().unwrap();
                    assert!(guard.len() > e, "epoch {e} published before its oracle");
                    let (s, row) = &guard[e].rows[r % sources.len()];
                    let want: Vec<Dist> = row.clone();
                    let s = *s;
                    drop(guard);
                    for t in (0..n as u32).step_by(7) {
                        assert_eq!(
                            snap.distance(s, t).unwrap(),
                            want[t as usize],
                            "reader {r}: epoch {e} answer drifted at ({s}, {t})"
                        );
                        checks.fetch_add(1, Ordering::Relaxed);
                    }
                    // Pin every ~3rd snapshot to re-verify after more
                    // publishes have happened.
                    if pinned.len() < 4 && e % 3 == (r % 3) {
                        pinned.push(snap);
                    }
                }
                // Isolation: pinned epochs still answer their own oracle
                // after the writer has long moved on.
                for snap in pinned {
                    let e = snap.epoch() as usize;
                    let guard = oracles.lock().unwrap();
                    let rows: Vec<(u32, Vec<Dist>)> = guard[e].rows.clone();
                    drop(guard);
                    for (s, row) in rows {
                        for t in (0..n as u32).step_by(11) {
                            assert_eq!(
                                snap.distance(s, t).unwrap(),
                                row[t as usize],
                                "reader {r}: pinned epoch {e} lost isolation at ({s}, {t})"
                            );
                            checks.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // Writer: register the oracle, then publish — never the reverse.
        for e in 1..=EPOCHS {
            let rep = dl.apply(&epoch_batch(e, n as u32)).unwrap();
            oracles.lock().unwrap().push(oracle_of(&dl, sources));
            let stats = eng.publish_from(&dl, &rep.dirty).unwrap();
            assert_eq!(stats.epoch, e);
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(eng.epoch(), EPOCHS);
    assert!(
        checks.load(Ordering::Relaxed) > 0,
        "readers verified nothing"
    );
    // The final epoch serves the final graph.
    let last = eng.snapshot();
    for &s in &sources {
        let want = twgraph::alg::dijkstra(dl.inst(), s).dist;
        for t in 0..n as u32 {
            assert_eq!(last.distance(s, t).unwrap(), want[t as usize]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random edit sequences: pin one snapshot per epoch as it is
    /// published; after the whole sequence, every pinned epoch must still
    /// answer exactly the all-pairs ground truth of its own graph version.
    #[test]
    fn pinned_epochs_answer_their_own_graph(
        seed in 0u64..1_000,
        n_edits in 1usize..6,
    ) {
        use rand::Rng;
        let n = 32usize;
        let g = twgraph::gen::partial_ktree(n, 2, 0.6, seed);
        let inst = twgraph::gen::with_random_weights(&g, 9, seed);
        let mut dl = DynamicLabeling::build(&inst, 3, seed).unwrap();
        let eng = VersionedEngine::from_labeling(
            &dl,
            ServeConfig {
                shard_size: 8,
                cache_capacity: 16,
                ..ServeConfig::default()
            },
        ).unwrap();

        // (snapshot, all-pairs oracle of that version).
        let mut edit_rng = twgraph::gen::derive_rng("versioning_edits", &[n_edits as u64], seed);
        let mut pinned = vec![(eng.snapshot(), oracle_all_pairs(&dl))];
        for _ in 0..n_edits {
            let u = edit_rng.gen_range(0..n as u32);
            let v = edit_rng.gen_range(0..n as u32);
            let batch = if edit_rng.gen_bool(0.5) {
                EdgeBatch::new().delete(u, v)
            } else {
                EdgeBatch::new().insert(u, v, edit_rng.gen_range(1..20))
            };
            let rep = dl.apply(&batch).unwrap();
            eng.publish_from(&dl, &rep.dirty).unwrap();
            pinned.push((eng.snapshot(), oracle_all_pairs(&dl)));
        }
        for (e, (snap, oracle)) in pinned.iter().enumerate() {
            prop_assert_eq!(snap.epoch(), e as u64);
            for s in 0..n as u32 {
                for t in 0..n as u32 {
                    let got = snap.distance(s, t).unwrap();
                    let want = oracle[s as usize][t as usize];
                    prop_assert!(got == want, "epoch {e} diverged at ({s}, {t}): {got} != {want}");
                }
            }
        }
    }
}

/// Full APSP ground truth of the labeling's current graph.
fn oracle_all_pairs(dl: &DynamicLabeling) -> Vec<Vec<Dist>> {
    (0..dl.n() as u32)
        .map(|s| twgraph::alg::dijkstra(dl.inst(), s).dist)
        .collect()
}
