//! Scenario: auditing a ring-augmented backbone for its shortest cycle.
//!
//! Operations wants the *weighted girth* of a backbone network: the
//! cheapest cycle determines how fast a broadcast storm can loop back.
//! Undirected girth cannot be read off distances naively (u–v–u is not a
//! cycle); the paper's exact count-1 walk trick (§7) handles it.
//!
//! ```sh
//! cargo run --release --example network_girth_audit
//! ```

use lowtw::prelude::*;
use lowtw::{baselines, girth};

fn main() {
    // A cycle with chords: treewidth stays small, several candidate
    // cycles of different weights exist.
    let n = 48usize;
    let mut edges: Vec<(u32, u32, u64)> = (0..n as u32)
        .map(|i| (i, (i + 1) % n as u32, 3u64 + (i as u64 % 5)))
        .collect();
    for k in 0..6u32 {
        let a = k * 8;
        let b = (a + 11) % n as u32;
        edges.push((a, b, 9 + k as u64));
    }
    let inst = MultiDigraph::from_undirected(n, edges);
    let g = inst.comm_graph();
    println!("backbone: n = {n}, m = {}, checking shortest cycle…", g.m());

    let session = Session::decompose(&g, 4, 13).unwrap();
    let cfg = girth::GirthConfig {
        trials_per_c: 8,
        seed: 99,
        measure_distributed: true,
    };
    let run = girth::girth_undirected(&inst, &session.td, &session.info, &cfg).unwrap();
    let truth = baselines::girth_exact_centralized(&inst);
    println!(
        "girth = {} (exact oracle: {truth}); {} trials, ≈{} rounds per trial",
        run.girth, run.trials, run.rounds_per_trial
    );
    assert_eq!(run.girth, truth);

    // The directed variant is a one-liner on top of the labels.
    let directed = session.girth_directed(&inst);
    println!(
        "as a directed multigraph the girth is {directed} (twin arcs allow 2-cycles: 2·min weight)"
    );
}
