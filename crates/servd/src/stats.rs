//! Latency accounting for the SLO report: nearest-rank percentiles over
//! recorded microsecond samples.
//!
//! The load generator records one sample per completed request —
//! *scheduled* send time to response, so queueing delay from falling
//! behind an open-loop schedule is charged to the server (no coordinated
//! omission) — and folds them into a [`LatencySummary`] for
//! `BENCH_servd.json`.

/// Nearest-rank percentile (`q` in percent, e.g. `99.9`) of an ascending
/// slice. Empty input answers 0.
pub fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The percentile digest of one latency population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples folded in.
    pub count: u64,
    /// Arithmetic mean, µs.
    pub mean_us: u64,
    /// Median, µs.
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// 99.9th percentile, µs.
    pub p999_us: u64,
    /// Worst observed, µs.
    pub max_us: u64,
}

impl LatencySummary {
    /// Digest a sample population (sorts in place; empty input digests
    /// to all zeros rather than poisoning the JSON with NaN).
    pub fn from_samples(samples: &mut [u64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let sum: u64 = samples.iter().sum();
        LatencySummary {
            count: samples.len() as u64,
            mean_us: sum / samples.len() as u64,
            p50_us: percentile_us(samples, 50.0),
            p90_us: percentile_us(samples, 90.0),
            p99_us: percentile_us(samples, 99.0),
            p999_us: percentile_us(samples, 99.9),
            max_us: *samples.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_on_a_known_population() {
        // 1..=100: pX is exactly X by nearest rank.
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 50.0), 50);
        assert_eq!(percentile_us(&v, 90.0), 90);
        assert_eq!(percentile_us(&v, 99.0), 99);
        assert_eq!(percentile_us(&v, 99.9), 100);
        assert_eq!(percentile_us(&v, 100.0), 100);
        // Tiny populations clamp sanely.
        assert_eq!(percentile_us(&[7], 50.0), 7);
        assert_eq!(percentile_us(&[7], 99.9), 7);
        assert_eq!(percentile_us(&[], 99.0), 0);
        // q = 0 clamps to the first sample instead of indexing at -1.
        assert_eq!(percentile_us(&[3, 9], 0.0), 3);
    }

    #[test]
    fn summary_digests_and_orders() {
        let mut samples = vec![30u64, 10, 20, 40, 1000];
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean_us, 220);
        assert_eq!(s.p50_us, 30);
        assert_eq!(s.max_us, 1000);
        assert!(s.p99_us >= s.p90_us && s.p999_us >= s.p99_us);
        assert_eq!(s.p999_us, 1000);
        // Empty population digests to zeros, not NaN.
        assert_eq!(
            LatencySummary::from_samples(&mut Vec::new()),
            LatencySummary::default()
        );
    }
}
