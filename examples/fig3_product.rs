//! Figure 3 reproduction: the product graph G_C of a 2-colored walk
//! constraint, printed state by state.
//!
//! Mirrors the paper's Figure 3: a small colored graph on the left, its
//! product (one copy of each vertex per state, plus the ⊥ backbone and
//! the intra-vertex give-up edges) on the right.
//!
//! ```sh
//! cargo run --release --example fig3_product
//! ```

use lowtw::stateful_walks::{build_product, ColoredWalk, StatefulConstraint, BOT, NABLA};
use lowtw::twgraph::{Arc, MultiDigraph};

fn main() {
    // v0 →r→ v1 →b→ v2 →r→ v3, plus v1 →r→ v2 (r = color 0, b = color 1).
    let arcs = vec![
        Arc {
            src: 0,
            dst: 1,
            weight: 1,
            label: 0,
            uedge: lowtw::twgraph::UEdgeId::NONE,
        },
        Arc {
            src: 1,
            dst: 2,
            weight: 1,
            label: 1,
            uedge: lowtw::twgraph::UEdgeId::NONE,
        },
        Arc {
            src: 1,
            dst: 2,
            weight: 1,
            label: 0,
            uedge: lowtw::twgraph::UEdgeId::NONE,
        },
        Arc {
            src: 2,
            dst: 3,
            weight: 1,
            label: 0,
            uedge: lowtw::twgraph::UEdgeId::NONE,
        },
    ];
    let g = MultiDigraph::from_arcs(4, arcs);
    let c = ColoredWalk { colors: 2 };

    println!("input graph G (labels r/b):");
    for a in g.arcs() {
        println!(
            "  v{} →{}→ v{}",
            a.src,
            if a.label == 0 { "r" } else { "b" },
            a.dst
        );
    }

    let p = build_product(&g, &c);
    println!(
        "\nproduct G_C: {} vertices ({} physical × |Q| = {}), {} arcs",
        p.graph.n(),
        p.n_physical,
        p.q,
        p.graph.n_arcs()
    );
    println!("states: 0 = ⊥, 1 = ▽, 2 = col-r, 3 = col-b\n");
    for a in p.graph.arcs() {
        let (us, uq) = p.split(a.src);
        let (vs, vq) = p.split(a.dst);
        let kind = if us == vs { "give-up" } else { "walk" };
        println!(
            "  (v{us},{}) → (v{vs},{})   [{kind}]",
            c.state_name(uq),
            c.state_name(vq),
        );
    }

    // The 2-colored reachability Figure 3 illustrates: from (v0, ▽).
    let spt = lowtw::twgraph::alg::dijkstra(&p.graph, p.vertex(0, NABLA));
    println!("\nshortest 2-colored walk distances from v0:");
    for v in 0..4u32 {
        for q in [NABLA, 2, 3, BOT] {
            let d = spt.dist[p.vertex(v, q) as usize];
            if d < lowtw::twgraph::INF {
                println!("  (v{v}, {}) at distance {d}", c.state_name(q));
            }
        }
    }
}
