//! Synthetic graph families with controlled treewidth / diameter, and
//! instance decorators (weights, orientations, bipartite structure).
//!
//! Every experiment in `EXPERIMENTS.md` draws its workloads from here. The
//! families are chosen so that (τ, D, n) can be swept independently:
//!
//! | family | treewidth | diameter |
//! |--------|-----------|----------|
//! | [`ktree`] / [`partial_ktree`] | = k / ≤ k | Θ(log n) typically |
//! | [`banded_path`] | = k | Θ(n/k) — the D-scaling family |
//! | [`grid`] | = min(rows, cols) | rows + cols − 2 |
//! | [`cycle`] | 2 | ⌊n/2⌋ |
//! | [`random_tree`] | 1 | varies |
//! | [`bit_gadget`] | O(log n) | ≤ 4 — the girth/diameter separation family |
//! | [`bipartite_banded`] | ≤ 2·band+1 | Θ(n/band) |

mod families;
mod instances;

pub use families::{
    banded_path, bipartite_banded, bit_gadget, cycle, gnp, grid, ktree, partial_ktree, path,
    random_tree,
};
pub use instances::{
    random_orientation, with_random_weights, with_unit_weights, BipartiteInstance,
};
