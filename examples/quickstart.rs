//! Quickstart: decompose a low-treewidth network, build exact distance
//! labels, answer queries, and compare the CONGEST cost against the
//! Bellman–Ford baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lowtw::prelude::*;

// `pub` so the smoke test (tests/smoke_quickstart.rs) can drive this
// example as a module.
pub fn main() {
    // A 400-node partial 3-tree with random arc weights — the kind of
    // sparse hierarchical topology the paper targets.
    let g = twgraph::gen::partial_ktree(400, 3, 0.7, 42);
    let inst = twgraph::gen::with_random_weights(&g, 100, 42);
    println!(
        "graph: n = {}, m = {}, diameter = {}",
        g.n(),
        g.m(),
        twgraph::alg::diameter_exact(&g)
    );

    // Theorem 1: tree decomposition (distributed, rounds measured).
    let (session, td_rounds) = Session::decompose_distributed(&g, 4, 42).unwrap();
    println!(
        "tree decomposition: width = {}, depth = {}, rounds = {}",
        session.width(),
        session.depth(),
        td_rounds
    );

    // Theorem 2: exact distance labeling (distributed, rounds measured).
    let (labels, dl_rounds) = session.labels_distributed(&inst).unwrap();
    let max_label = labels.iter().map(|l| l.words()).max().unwrap();
    println!("labels: max size = {max_label} words, construction rounds = {dl_rounds}");

    // Decode a few pairs locally — no further communication.
    for (u, v) in [(0u32, 399u32), (17, 230), (255, 8)] {
        let d = decode(&labels[u as usize], &labels[v as usize]);
        let truth = twgraph::alg::dijkstra(&inst, u).dist[v as usize];
        println!("d({u} → {v}) = {d}   (dijkstra agrees: {})", d == truth);
    }

    // SSSP via one label broadcast vs distributed Bellman–Ford.
    let mut net = Network::new(g.clone(), NetworkConfig::default());
    let (dists, sssp_rounds) = distlabel::sssp_distributed(&mut net, &labels, 0).unwrap();
    let mut net2 = Network::new(g.clone(), NetworkConfig::default());
    let (bf, bf_rounds) = baselines::bellman_ford_distributed(&mut net2, &inst, 0).unwrap();
    assert_eq!(dists, bf);
    println!(
        "SSSP rounds: label broadcast = {} (plus {dl_rounds} one-time), Bellman–Ford = {}",
        sssp_rounds, bf_rounds
    );
}

use lowtw::{baselines, distlabel, twgraph};
