//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Implements the entry points the workspace's benches use — groups,
//! `bench_with_input`, `bench_function`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — over a deliberately tiny
//! measurement loop: a short warm-up, then `sample_size` timed samples of a
//! calibrated batch, reporting min/median/mean per iteration. No plots, no
//! statistics beyond that; good enough to compare runs by eye and to keep
//! `cargo bench` functional offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        let name = function_name.into();
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    /// Per-iteration timings of the measured samples, in seconds.
    last_sample_secs: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, batching iterations so one sample lasts long enough
    /// to measure, and record per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch calibration: aim for samples of ≥ ~2ms.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.last_sample_secs.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.last_sample_secs
                .push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn run_one(full_id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_sample_secs: Vec::new(),
    };
    f(&mut b);
    let mut xs = b.last_sample_secs;
    if xs.is_empty() {
        println!("{full_id:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    let min = xs[0];
    let median = xs[xs.len() / 2];
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    println!(
        "{full_id:<40} min {:>12}   median {:>12}   mean {:>12}   ({} samples)",
        fmt_secs(min),
        fmt_secs(median),
        fmt_secs(mean),
        xs.len()
    );
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.effective_sample_size();
        run_one(id, samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.effective_sample_size();
        run_one(&id.id, samples, &mut |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// Declare a group-runner function invoking each benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(4u32), &4u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        group.finish();
        assert!(ran > 0);
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
