//! Criterion: the CONGEST engine and the primitive layer throughput.

use congest_sim::{Network, NetworkConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_ops::global::build_global_tree;
use subgraph_ops::{pa, Parts};

fn bench_superstep(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_flood");
    group.sample_size(10);
    // Shallow partial k-trees so the flood depth stays small while the
    // per-superstep node sweep is what the arena engine is measured on.
    for n in [4096usize, 100_000] {
        let g = twgraph::gen::partial_ktree(n, 3, 0.7, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut net = Network::new(g.clone(), NetworkConfig::default());
                build_global_tree(&mut net).unwrap().height
            })
        });
    }
    group.finish();
}

fn bench_pa(c: &mut Criterion) {
    let mut group = c.benchmark_group("partwise_aggregate");
    group.sample_size(10);
    // The rate-limited Steiner flows cost ~35 s/iter at n = 100k; the
    // engine bench bin covers that scale — keep the micro-bench snappy.
    for n in [2048usize, 20_000] {
        let g = twgraph::gen::partial_ktree(n, 2, 0.7, 1);
        let labels: Vec<Option<u32>> = (0..n).map(|v| Some((v / 32) as u32)).collect();
        let parts = Parts::from_labels(&labels);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut net = Network::new(g.clone(), NetworkConfig::default());
                let tree = build_global_tree(&mut net).unwrap();
                let roles = pa::steiner_roles(&tree, &parts);
                pa::aggregate(&mut net, &roles, |_v, _p| Some(1u64), |a, b| a + b)
                    .unwrap()
                    .roots
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_superstep, bench_pa);
criterion_main!(benches);
