//! # twgraph — graph substrate for the `lowtw` workspace
//!
//! This crate owns every graph-shaped object the reproduction needs:
//!
//! * [`UGraph`] — simple undirected unweighted graphs. These model the
//!   *communication network* ⟦G⟧ of the CONGEST model (paper §2.1).
//! * [`MultiDigraph`] — directed, weighted, labeled multigraphs. These model
//!   *problem instances* (paper §2.1: weighted/directed multigraph inputs whose
//!   underlying communication graph is their undirected projection).
//! * [`tw::TreeDecomposition`] — rooted tree decompositions (paper §2.2) with a
//!   full validity verifier (conditions (a), (b), (c)).
//! * [`gen`] — synthetic graph families with controlled treewidth / diameter,
//!   used by every experiment in `docs/EXPERIMENTS.md`.
//! * [`alg`] — centralized reference algorithms (BFS, Dijkstra, components,
//!   exact diameter, …) that serve as correctness oracles for the distributed
//!   implementations.
//! * [`tw`] — a treewidth toolkit: elimination-order heuristics that bound the
//!   width from above and a degeneracy bound from below.
//! * [`fo`] — the tiny first-order formula DSL (∃/∀, adjacency / equality /
//!   bounded-distance atoms) behind the FO-property scenario pipeline.
//!
//! Everything is implemented from scratch on `std`; no external graph library
//! is used, so the CONGEST simulator can account for every word that moves.

pub mod alg;
pub mod fo;
pub mod gen;
pub mod ids;
pub mod multidigraph;
pub mod tw;
pub mod ugraph;
pub mod update;
pub mod view;

pub use ids::{ArcId, NodeId, UEdgeId};
pub use multidigraph::{Arc, MultiDigraph};
pub use ugraph::{UGraph, UGraphBuilder};
pub use update::EdgeBatch;
pub use view::{StampSet, SubgraphView};

/// Distance value used across the workspace. `u64` with a saturating
/// "infinity" below, so sums of two finite distances never wrap.
pub type Dist = u64;

/// Infinity sentinel for [`Dist`]. Chosen as `u64::MAX / 4` so that
/// `INF + INF` as well as `INF + (any edge weight)` stays above any finite
/// distance without overflowing.
pub const INF: Dist = u64::MAX / 4;

/// Saturating distance addition that preserves the [`INF`] sentinel.
#[inline]
pub fn dist_add(a: Dist, b: Dist) -> Dist {
    if a >= INF || b >= INF {
        INF
    } else {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_add_saturates() {
        assert_eq!(dist_add(INF, 5), INF);
        assert_eq!(dist_add(5, INF), INF);
        assert_eq!(dist_add(INF, INF), INF);
        assert_eq!(dist_add(2, 3), 5);
    }

    #[test]
    fn inf_is_stable_under_edge_sums() {
        // Any realistic accumulated weight stays clearly below INF.
        let big = 1u64 << 40;
        assert!(dist_add(big, big) < INF);
    }
}
