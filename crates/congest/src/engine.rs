//! The superstep engine.

use crate::metrics::Metrics;
use crate::projection::EdgeProjection;
use crate::wire::WireMsg;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use twgraph::UGraph;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Words each edge carries per direction per round (`W`; default 1 —
    /// the classical CONGEST normalization of one O(log n)-bit message).
    pub bandwidth_words: u64,
    /// Node count above which send/recv phases run on the rayon pool.
    pub parallel_threshold: usize,
    /// Seed for the unique O(log n)-bit node identifiers.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            bandwidth_words: 1,
            parallel_threshold: 2048,
            seed: 0xC0FFEE,
        }
    }
}

/// A simulated CONGEST network over a fixed communication graph.
///
/// The network owns the topology, the cost accounting and the node
/// identifiers; *algorithm state* lives outside in a `Vec<S>` supplied to
/// [`superstep`](Network::superstep), so one network can run many protocols
/// back to back while accumulating a single round count.
pub struct Network {
    g: UGraph,
    /// Undirected edges sorted ascending — edge id = position.
    edges: Vec<(u32, u32)>,
    projection: EdgeProjection,
    cfg: NetworkConfig,
    metrics: Metrics,
    /// Unique random O(log n)-bit node ids (the model's identifiers).
    uids: Vec<u64>,
}

impl Network {
    /// A physical network on the communication graph `g`.
    pub fn new(g: UGraph, cfg: NetworkConfig) -> Self {
        let projection = EdgeProjection::identity(&g);
        Self::with_projection(g, projection, cfg)
    }

    /// A (possibly virtual) network whose word traffic is charged through
    /// `projection` onto physical edges.
    pub fn with_projection(g: UGraph, projection: EdgeProjection, cfg: NetworkConfig) -> Self {
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut uids: Vec<u64> = (0..g.n() as u64).map(|v| (v << 32) | rng.gen::<u32>() as u64).collect();
        // The high half guarantees uniqueness; shuffle the order relation by
        // rotating so uid order is unrelated to index order.
        for u in uids.iter_mut() {
            *u = u.rotate_left(32);
        }
        Network {
            g,
            edges,
            projection,
            cfg,
            metrics: Metrics::default(),
            uids,
        }
    }

    /// The communication graph.
    #[inline]
    pub fn graph(&self) -> &UGraph {
        &self.g
    }

    /// Node count.
    #[inline]
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// The unique identifier of node `v`.
    #[inline]
    pub fn uid(&self, v: u32) -> u64 {
        self.uids[v as usize]
    }

    /// Accumulated metrics.
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Engine configuration.
    #[inline]
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Charge rounds outside message traffic (global O(D)-round control
    /// pulses by the orchestrator; see DESIGN.md §4.4).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.rounds += rounds;
        self.metrics.charged_rounds += rounds;
    }

    /// Edge id of `{u, v}`, if present.
    #[inline]
    fn edge_id(&self, u: u32, v: u32) -> Option<u32> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.binary_search(&key).ok().map(|i| i as u32)
    }

    /// Execute one superstep.
    ///
    /// * `send(v, &state)` returns the messages node `v` emits as
    ///   `(neighbor, payload)` pairs — sending to a non-neighbor is a model
    ///   violation and panics.
    /// * `recv(v, &mut state, inbox)` consumes the delivered messages as
    ///   `(source, payload)` pairs, ordered by source id.
    ///
    /// Returns the number of rounds charged:
    /// `max(1, max_slot ⌈words(slot)/W⌉)` over physical directed edges.
    pub fn superstep<S, M>(
        &mut self,
        states: &mut [S],
        send: impl Fn(u32, &S) -> Vec<(u32, M)> + Sync,
        recv: impl Fn(u32, &mut S, Vec<(u32, M)>) + Sync,
    ) -> u64
    where
        S: Send + Sync,
        M: WireMsg,
    {
        let n = self.g.n();
        assert_eq!(states.len(), n, "state vector must match node count");

        // Phase 1: emit.
        let outs: Vec<Vec<(u32, M)>> = if n >= self.cfg.parallel_threshold {
            states
                .par_iter()
                .enumerate()
                .map(|(u, s)| send(u as u32, s))
                .collect()
        } else {
            states
                .iter()
                .enumerate()
                .map(|(u, s)| send(u as u32, s))
                .collect()
        };

        // Phase 2: validate, account, route.
        let mut slot_words = vec![0u64; self.projection.n_physical_edges() * 2];
        let mut inbox_len = vec![0usize; n];
        let mut n_messages = 0u64;
        for (u, msgs) in outs.iter().enumerate() {
            for (v, m) in msgs {
                let eid = self.edge_id(u as u32, *v).unwrap_or_else(|| {
                    panic!("CONGEST violation: {u} sent to non-neighbor {v}")
                });
                let w = m.words();
                debug_assert!(w >= 1, "zero-word message");
                if let Some(slot) = self.projection.slot(eid, (u as u32) < *v) {
                    slot_words[slot] += w;
                }
                inbox_len[*v as usize] += 1;
                n_messages += 1;
            }
        }
        let max_slot = slot_words.iter().copied().max().unwrap_or(0);
        let rounds = slot_words
            .iter()
            .map(|&w| w.div_ceil(self.cfg.bandwidth_words))
            .max()
            .unwrap_or(0)
            .max(1);
        self.metrics.rounds += rounds;
        self.metrics.supersteps += 1;
        self.metrics.messages += n_messages;
        self.metrics.words += slot_words.iter().sum::<u64>();
        self.metrics.max_edge_words_in_superstep =
            self.metrics.max_edge_words_in_superstep.max(max_slot);

        let mut inboxes: Vec<Vec<(u32, M)>> = inbox_len.into_iter().map(Vec::with_capacity).collect();
        for (u, msgs) in outs.into_iter().enumerate() {
            for (v, m) in msgs {
                // Iterating sources ascending keeps inboxes sorted by source.
                inboxes[v as usize].push((u as u32, m));
            }
        }

        // Phase 3: deliver.
        if n >= self.cfg.parallel_threshold {
            states
                .par_iter_mut()
                .zip(inboxes.into_par_iter())
                .enumerate()
                .for_each(|(v, (s, inbox))| recv(v as u32, s, inbox));
        } else {
            for (v, (s, inbox)) in states.iter_mut().zip(inboxes).enumerate() {
                recv(v as u32, s, inbox);
            }
        }
        rounds
    }

    /// Run supersteps until `send` produces no messages anywhere (a
    /// quiescence-driven loop, e.g. flooding). The final silent superstep is
    /// *not* charged. Returns the number of productive supersteps.
    pub fn run_until_quiet<S, M>(
        &mut self,
        states: &mut [S],
        send: impl Fn(u32, &S) -> Vec<(u32, M)> + Sync,
        recv: impl Fn(u32, &mut S, Vec<(u32, M)>) + Sync,
        max_supersteps: u64,
    ) -> u64
    where
        S: Send + Sync,
        M: WireMsg,
    {
        let mut steps = 0;
        loop {
            assert!(
                steps < max_supersteps,
                "run_until_quiet exceeded {max_supersteps} supersteps"
            );
            // Peek: is anyone sending? (Evaluating send twice is fine — it
            // must be a pure function of the state.)
            let quiet = if states.len() >= self.cfg.parallel_threshold {
                states
                    .par_iter()
                    .enumerate()
                    .all(|(u, s)| send(u as u32, s).is_empty())
            } else {
                states
                    .iter()
                    .enumerate()
                    .all(|(u, s)| send(u as u32, s).is_empty())
            };
            if quiet {
                return steps;
            }
            self.superstep(states, &send, &recv);
            steps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twgraph::gen::path;

    #[derive(Clone, Default)]
    struct FloodState {
        dist: Option<u32>,
        fresh: bool,
    }

    /// Distributed BFS flood; returns (dists, supersteps).
    fn flood(net: &mut Network, src: u32) -> Vec<Option<u32>> {
        let n = net.n();
        let mut states = vec![FloodState::default(); n];
        states[src as usize] = FloodState {
            dist: Some(0),
            fresh: true,
        };
        let g = net.graph().clone();
        net.run_until_quiet(
            &mut states,
            |u, s: &FloodState| {
                if s.fresh {
                    let d = s.dist.unwrap();
                    g.neighbors(u).iter().map(|&v| (v, d + 1)).collect()
                } else {
                    Vec::new()
                }
            },
            |_v, s, inbox| {
                s.fresh = false;
                for (_src, d) in inbox {
                    if s.dist.map_or(true, |cur| d < cur) {
                        s.dist = Some(d);
                        s.fresh = true;
                    }
                }
            },
            10_000,
        );
        states.into_iter().map(|s| s.dist).collect()
    }

    #[test]
    fn flood_on_path_costs_diameter_rounds() {
        let g = path(10);
        let mut net = Network::new(g, NetworkConfig::default());
        let dists = flood(&mut net, 0);
        for (v, d) in dists.iter().enumerate() {
            assert_eq!(*d, Some(v as u32));
        }
        // Nine propagation supersteps plus the last node's final echo.
        assert_eq!(net.metrics().rounds, 10);
        assert_eq!(net.metrics().max_edge_words_in_superstep, 1);
    }

    #[test]
    fn big_messages_charge_extra_rounds() {
        let g = path(2);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states = vec![0u64; 2];
        let rounds = net.superstep(
            &mut states,
            |u, _s| {
                if u == 0 {
                    vec![(1u32, vec![7u32; 5])] // one 5-word message
                } else {
                    Vec::new()
                }
            },
            |_v, s, inbox| {
                if let Some((_, payload)) = inbox.first() {
                    *s = payload.len() as u64;
                }
            },
        );
        assert_eq!(rounds, 5);
        assert_eq!(states[1], 5);
        assert_eq!(net.metrics().words, 5);
    }

    #[test]
    fn wider_bandwidth_reduces_rounds() {
        let g = path(2);
        let cfg = NetworkConfig {
            bandwidth_words: 4,
            ..Default::default()
        };
        let mut net = Network::new(g, cfg);
        let mut states = vec![(); 2];
        let rounds = net.superstep(
            &mut states,
            |u, _s| {
                if u == 0 {
                    vec![(1u32, vec![0u32; 8])]
                } else {
                    Vec::new()
                }
            },
            |_v, _s, _inbox| {},
        );
        assert_eq!(rounds, 2); // ⌈8/4⌉
    }

    #[test]
    fn both_directions_accounted_separately() {
        let g = path(2);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states = vec![(); 2];
        // One word each way in the same superstep: full-duplex, 1 round.
        let rounds = net.superstep(
            &mut states,
            |u, _s| vec![(1 - u, 1u32)],
            |_v, _s, _inbox| {},
        );
        assert_eq!(rounds, 1);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = path(3); // 0-1-2: 0 and 2 not adjacent
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states = vec![(); 3];
        net.superstep(
            &mut states,
            |u, _s| if u == 0 { vec![(2u32, 1u32)] } else { Vec::new() },
            |_v, _s, _inbox| {},
        );
    }

    #[test]
    fn inbox_sorted_by_source() {
        let g = twgraph::UGraph::from_edges(4, [(3, 0), (3, 1), (3, 2)]);
        let mut net = Network::new(g, NetworkConfig::default());
        let mut states: Vec<Vec<u32>> = vec![Vec::new(); 4];
        net.superstep(
            &mut states,
            |u, _s| if u != 3 { vec![(3u32, u)] } else { Vec::new() },
            |v, s, inbox| {
                if v == 3 {
                    *s = inbox.iter().map(|&(src, _)| src).collect();
                }
            },
        );
        assert_eq!(states[3], vec![0, 1, 2]);
    }

    #[test]
    fn uids_unique() {
        let g = path(100);
        let net = Network::new(g, NetworkConfig::default());
        let mut ids: Vec<u64> = (0..100).map(|v| net.uid(v)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn charged_rounds_tracked() {
        let g = path(2);
        let mut net = Network::new(g, NetworkConfig::default());
        net.charge_rounds(7);
        assert_eq!(net.metrics().rounds, 7);
        assert_eq!(net.metrics().charged_rounds, 7);
    }

    #[test]
    fn virtual_local_edges_are_free() {
        // Physical: 0-1. Virtual: 4 nodes, host v/2; local virtual edges
        // (0,1) and (2,3) must not be charged.
        let phys = path(2);
        let virt = twgraph::UGraph::from_edges(4, [(0, 1), (2, 3), (0, 2)]);
        let proj = crate::EdgeProjection::from_hosts(&virt, &phys, |v| v / 2);
        let mut net = Network::with_projection(virt, proj, NetworkConfig::default());
        let mut states = vec![(); 4];
        // Heavy local chatter + one physical word: still 1 round.
        let rounds = net.superstep(
            &mut states,
            |u, _s| match u {
                0 => vec![(1u32, vec![9u32; 100]), (2u32, vec![1u32; 1])],
                3 => vec![(2u32, vec![9u32; 50])],
                _ => Vec::new(),
            },
            |_v, _s, _inbox| {},
        );
        assert_eq!(rounds, 1);
        assert_eq!(net.metrics().words, 1); // only the physical word counted
    }
}
