//! # congest-sim — a round-accurate CONGEST simulator
//!
//! The CONGEST model (paper §2.1): a synchronous network of `n` nodes joined
//! by the undirected communication graph ⟦G⟧. Per round, each node sends one
//! O(log n)-bit message per incident edge per direction, then computes
//! locally for free.
//!
//! ## Cost model
//!
//! Algorithms here execute **supersteps**. In a superstep every node emits
//! messages to neighbours based only on its own state; all messages are then
//! delivered at once. A superstep in which some directed edge carries `w`
//! *words* (one word = one O(log n)-bit unit: a vertex id, a distance under
//! the standard poly(n)-weight assumption, a small tag) is charged
//! `max_(e,dir) ⌈w(e,dir)/W⌉` rounds, `W` being the per-edge per-direction
//! word budget (default 1). This is the number of rounds a real execution
//! pays by pipelining each edge's queue independently, and — because nodes
//! only read their inbox after the superstep — no node ever acts on
//! partially-delivered data, so the accounting is sound. It also realizes
//! Ghaffari's O(dilation + congestion) scheduling bound for concurrent
//! subgraph algorithms (paper Theorem 6): running them in one shared
//! superstep sequence makes the per-edge word count *be* the congestion.
//!
//! ## Example
//!
//! A BFS flood on a 10-node path. State per node is `(dist, fresh)`; a node
//! re-broadcasts only when its distance improved. The engine charges exactly
//! ten rounds — nine propagation supersteps plus the far endpoint's final
//! (improving-nothing) echo:
//!
//! ```
//! use congest_sim::{Network, NetworkConfig};
//!
//! let g = twgraph::gen::path(10);
//! let mut net = Network::new(g.clone(), NetworkConfig::default());
//!
//! let mut states: Vec<(Option<u32>, bool)> = vec![(None, false); 10];
//! states[0] = (Some(0), true);
//! net.run_until_quiet(
//!     &mut states,
//!     |u, s| match s {
//!         (Some(d), true) => g.neighbors(u).iter().map(|&v| (v, d + 1)).collect(),
//!         _ => Vec::new(),
//!     },
//!     |_v, s, inbox| {
//!         s.1 = false;
//!         for (_src, d) in inbox {
//!             if s.0.map_or(true, |cur| d < cur) {
//!                 *s = (Some(d), true);
//!             }
//!         }
//!     },
//!     10_000,
//! ).unwrap();
//!
//! assert_eq!(states[9].0, Some(9));
//! assert_eq!(net.metrics().rounds, 10);
//! assert_eq!(net.metrics().max_edge_words_in_superstep, 1);
//! ```
//!
//! ## Virtual networks
//!
//! For the stateful-walk product graphs G_C (paper §5.2) every physical node
//! hosts |Q| virtual nodes. [`EdgeProjection`] maps each virtual edge to the
//! physical edge it rides on (or marks it node-local = free), so the charge
//! for a virtual superstep is measured on physical edges — reproducing the
//! O(|Q|·p_max) simulation overhead by measurement instead of by formula.

mod engine;
mod error;
mod metrics;
mod projection;
mod wire;

pub use engine::{balanced_ranges, Inbox, InboxIter, Network, NetworkConfig};
pub use error::CongestError;
pub use metrics::{Metrics, MetricsDelta, PhaseSnapshot};
pub use projection::{EdgeProjection, NO_SLOT};
pub use wire::WireMsg;
