//! Rooted spanning trees, subtree measures, and centroids.
//!
//! The `Split` procedure of the paper's separator algorithm (§3.3, Fig. 1)
//! operates on rooted spanning trees: it repeatedly finds the *center*
//! (measure-centroid) of a tree and carves off subtrees by size. These are
//! the centralized building blocks; the distributed counterparts live in
//! `subgraph-ops` (RST / STA / SLE tasks of Lemma 8).

use crate::ugraph::UGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// A rooted tree over (a subset of) a graph's vertices, stored as parent
/// pointers. Vertices outside the tree have `parent[v] == u32::MAX`;
/// the root points to itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootedTree {
    /// Parent pointer per vertex (self for root, `u32::MAX` for non-members).
    pub parent: Vec<u32>,
    /// The root vertex.
    pub root: u32,
}

impl RootedTree {
    /// Membership test.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.parent[v as usize] != u32::MAX
    }

    /// The member vertices, in index order.
    pub fn members(&self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .filter(|&v| self.contains(v))
            .collect()
    }

    /// Children lists (only meaningful for member vertices).
    pub fn children(&self) -> Vec<Vec<u32>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for v in 0..self.parent.len() as u32 {
            if self.contains(v) && v != self.root {
                ch[self.parent[v as usize] as usize].push(v);
            }
        }
        ch
    }

    /// Re-root the tree at `new_root` (must be a member): reverses parent
    /// pointers along the root path. Used by `Split` after the center of a
    /// subtree is located (§3.3: "Now we regard c as the root of T").
    pub fn reroot(&mut self, new_root: u32) {
        assert!(self.contains(new_root), "new root not in tree");
        let mut path = vec![new_root];
        let mut cur = new_root;
        while self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        for w in path.windows(2) {
            self.parent[w[1] as usize] = w[0];
        }
        self.parent[new_root as usize] = new_root;
        self.root = new_root;
    }

    /// Vertices in a bottom-up order (every vertex after all of its
    /// children... actually before its parent), computed by a DFS.
    pub fn bottom_up_order(&self) -> Vec<u32> {
        let ch = self.children();
        let mut order = Vec::new();
        let mut stack = vec![(self.root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
            } else {
                stack.push((v, true));
                for &c in &ch[v as usize] {
                    stack.push((c, false));
                }
            }
        }
        order
    }
}

/// Measure of each subtree: `sizes[v] = Σ_{u ∈ T(v)} mu[u]` for members,
/// 0 for non-members. `mu` is the paper's µ_X vertex measure.
pub fn subtree_sizes(t: &RootedTree, mu: &[u64]) -> Vec<u64> {
    let mut sizes = vec![0u64; t.parent.len()];
    for v in t.bottom_up_order() {
        sizes[v as usize] += mu[v as usize];
        let p = t.parent[v as usize];
        if p != v {
            sizes[p as usize] += sizes[v as usize];
        }
    }
    sizes
}

/// Measure-centroid of a rooted tree: a vertex `c` such that every component
/// of `T − c` has measure ≤ µ(T)/2 (equivalently: every child subtree of `c`
/// and the complement have measure ≤ µ(T)/2). Always exists; ties broken by
/// smallest vertex id so the result is deterministic.
pub fn centroid(t: &RootedTree, mu: &[u64]) -> u32 {
    let sizes = subtree_sizes(t, mu);
    let total = sizes[t.root as usize];
    let ch = t.children();
    let mut best = None;
    for v in t.members() {
        let mut max_piece = total - sizes[v as usize]; // the "above" part
        for &c in &ch[v as usize] {
            max_piece = max_piece.max(sizes[c as usize]);
        }
        if 2 * max_piece <= total {
            match best {
                None => best = Some(v),
                Some(b) if v < b => best = Some(v),
                _ => {}
            }
        }
    }
    best.expect("every nonempty tree has a centroid")
}

/// A uniformly random spanning tree would be overkill; this builds a random
/// DFS spanning tree of the component containing `root` (random neighbour
/// order), which is what the distributed RST task produces up to tie-breaks.
pub fn random_spanning_tree(g: &UGraph, root: u32, rng: &mut impl Rng) -> RootedTree {
    let mut parent = vec![u32::MAX; g.n()];
    parent[root as usize] = root;
    let mut stack = vec![root];
    let mut scratch: Vec<u32> = Vec::new();
    while let Some(u) = stack.pop() {
        scratch.clear();
        scratch.extend_from_slice(g.neighbors(u));
        scratch.shuffle(rng);
        for &v in &scratch {
            if parent[v as usize] == u32::MAX {
                parent[v as usize] = u;
                stack.push(v);
            }
        }
    }
    RootedTree { parent, root }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UGraph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn path_tree(n: usize) -> RootedTree {
        // 0 <- 1 <- 2 <- ... rooted at 0
        let mut parent: Vec<u32> = (0..n as u32).map(|v| v.saturating_sub(1)).collect();
        parent[0] = 0;
        RootedTree { parent, root: 0 }
    }

    #[test]
    fn subtree_sizes_path() {
        let t = path_tree(4);
        let s = subtree_sizes(&t, &[1; 4]);
        assert_eq!(s, vec![4, 3, 2, 1]);
    }

    #[test]
    fn centroid_of_path() {
        let t = path_tree(5);
        let c = centroid(&t, &[1; 5]);
        assert_eq!(c, 2);
    }

    #[test]
    fn centroid_weighted() {
        let t = path_tree(5);
        // All mass on vertex 4 → 4 is the centroid.
        let c = centroid(&t, &[0, 0, 0, 0, 100]);
        assert_eq!(c, 4);
    }

    #[test]
    fn reroot_preserves_members() {
        let mut t = path_tree(5);
        t.reroot(4);
        assert_eq!(t.root, 4);
        assert_eq!(t.parent[4], 4);
        assert_eq!(t.parent[0], 1);
        let s = subtree_sizes(&t, &[1; 5]);
        assert_eq!(s[4], 5);
        assert_eq!(s[0], 1);
    }

    #[test]
    fn spanning_tree_spans_component() {
        let g = UGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]);
        let mut rng = SmallRng::seed_from_u64(7);
        let t = random_spanning_tree(&g, 0, &mut rng);
        for v in 0..4u32 {
            assert!(t.contains(v));
        }
        assert!(!t.contains(4) && !t.contains(5));
        // Tree edges must be graph edges.
        for v in t.members() {
            let p = t.parent[v as usize];
            if p != v {
                assert!(g.has_edge(v, p));
            }
        }
    }

    #[test]
    fn bottom_up_order_children_first() {
        let t = path_tree(4);
        let order = t.bottom_up_order();
        let pos: Vec<usize> = (0..4u32)
            .map(|v| order.iter().position(|&x| x == v).unwrap())
            .collect();
        for v in 1..4usize {
            assert!(pos[v] < pos[v - 1], "child must precede parent");
        }
    }
}
