//! Centralized reference algorithms.
//!
//! These are the *oracles*: every distributed algorithm in the workspace is
//! checked against one of these straightforward, well-tested centralized
//! counterparts. They are also used internally wherever the CONGEST model
//! permits free local computation on locally-known subgraphs (paper §2.1).

mod apsp;
mod bfs;
mod components;
mod dijkstra;
mod mincut;
mod trees;

pub use apsp::{apsp_dijkstra, floyd_warshall};
pub use bfs::{bfs_dist, bfs_tree, diameter_exact, eccentricity};
pub use components::{components, is_connected, largest_component};
pub use dijkstra::{dijkstra, dijkstra_to, ShortestPathTree};
pub use mincut::{min_vertex_cut, MincutError};
pub use trees::{centroid, random_spanning_tree, subtree_sizes, RootedTree};
