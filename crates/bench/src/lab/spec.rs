//! Experiment specs: the declarative layer of the lab.
//!
//! A spec is one TOML file under `crates/bench/experiments/` naming a
//! [`Driver`], base [`Params`], optional `[[variant]]` overlays, optional
//! scenario/pipeline restrictions (matrix driver only), and one
//! `[profile.<name>]` table per runnable profile. Semantic validation
//! happens here with the spans the parser preserved, so an unknown
//! pipeline in `engine.toml` reports `engine.toml:7:1: unknown pipeline
//! "ssp" (expected one of ...)` instead of failing downstream.

use crate::lab::toml::{self, Item, Span, Spanned, Table, TomlValue};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Which trial runner an experiment dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Driver {
    /// Distributed decompose → label → query on one instance.
    Engine,
    /// The scenario × pipeline cross-product from the `scenarios` registry.
    Matrix,
    /// Build-once / query-many store replay (flat or packed layout).
    Serve,
    /// The store served over a real socket with an open-loop workload.
    Servd,
    /// Incremental label maintenance vs scratch rebuild under live readers.
    Update,
    /// The per-claim paper tables (e1–e9, a1–a3) as variants.
    Tables,
}

impl Driver {
    pub const ALL: [(&'static str, Driver); 6] = [
        ("engine", Driver::Engine),
        ("matrix", Driver::Matrix),
        ("serve", Driver::Serve),
        ("servd", Driver::Servd),
        ("update", Driver::Update),
        ("tables", Driver::Tables),
    ];

    pub fn name(self) -> &'static str {
        Driver::ALL
            .iter()
            .find(|(_, d)| *d == self)
            .map(|(n, _)| *n)
            .expect("every driver is registered")
    }

    fn parse(s: &str) -> Option<Driver> {
        Driver::ALL.iter().find(|(n, _)| *n == s).map(|(_, d)| *d)
    }
}

/// One typed parameter value.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(x) => write!(f, "{x}"),
            ParamValue::Str(s) => write!(f, "{s}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A flat, ordered key → value parameter map (overlays are last-wins).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Params(pub BTreeMap<String, ParamValue>);

impl Params {
    /// Overlay `other` on top of `self` (other wins on key collisions).
    pub fn overlaid(&self, other: &Params) -> Params {
        let mut out = self.clone();
        for (k, v) in &other.0 {
            out.0.insert(k.clone(), v.clone());
        }
        out
    }

    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.0.get(key)
    }

    /// Integer parameter as `usize`, with a default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        match self.0.get(key) {
            Some(ParamValue::Int(i)) => usize::try_from(*i)
                .unwrap_or_else(|_| panic!("param {key} = {i} does not fit usize")),
            Some(other) => panic!("param {key} must be an integer, got {other}"),
            None => default,
        }
    }

    /// Integer parameter as `u64`, with a default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        match self.0.get(key) {
            Some(ParamValue::Int(i)) => u64::try_from(*i)
                .unwrap_or_else(|_| panic!("param {key} = {i} must be non-negative")),
            Some(other) => panic!("param {key} must be an integer, got {other}"),
            None => default,
        }
    }

    /// Float parameter (integers coerce), with a default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        match self.0.get(key) {
            Some(ParamValue::Float(x)) => *x,
            Some(ParamValue::Int(i)) => *i as f64,
            Some(other) => panic!("param {key} must be numeric, got {other}"),
            None => default,
        }
    }

    /// String parameter, with a default.
    pub fn str<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        match self.0.get(key) {
            Some(ParamValue::Str(s)) => s,
            Some(other) => panic!("param {key} must be a string, got {other}"),
            None => default,
        }
    }
}

/// A named parameter overlay: one point of the variant dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct Variant {
    pub name: String,
    pub params: Params,
}

/// A named runnable configuration of an experiment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    /// Parameter overlay applied on top of the spec base params.
    pub params: Params,
    /// Restrict the variant dimension to these names (empty = all).
    pub variants: Vec<String>,
    /// Matrix only: restrict scenarios (empty = all registered).
    pub scenarios: Vec<String>,
    /// Matrix only: restrict pipelines (empty = all registered).
    pub pipelines: Vec<String>,
    /// Repetitions per trial (default: the spec-level `reps`).
    pub reps: Option<u64>,
}

/// One parsed, validated experiment spec.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Experiment name — also the committed baseline stem (`BENCH_<name>.json`).
    pub name: String,
    pub driver: Driver,
    /// Default repetitions per trial.
    pub reps: u64,
    /// Base parameters every profile/variant overlays.
    pub params: Params,
    /// The variant dimension (empty = one unnamed variant).
    pub variants: Vec<Variant>,
    /// Matrix only: the scenario dimension (empty = full registry).
    pub scenarios: Vec<String>,
    /// Matrix only: the pipeline dimension (empty = all pipelines).
    pub pipelines: Vec<String>,
    /// Named profiles (`quick`, `full`, ...).
    pub profiles: BTreeMap<String, Profile>,
}

/// Spec validation failure, pointing at the offending token.
#[derive(Debug)]
pub struct SpecError {
    /// Spec file the error is from (file name only).
    pub file: String,
    pub span: Span,
    pub msg: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file, self.span.line, self.span.col, self.msg
        )
    }
}

impl std::error::Error for SpecError {}

fn serr(file: &str, span: Span, msg: impl Into<String>) -> SpecError {
    SpecError {
        file: file.to_string(),
        span,
        msg: msg.into(),
    }
}

/// The directory experiment specs live in: `$LAB_EXPERIMENTS_DIR` if set,
/// else `crates/bench/experiments/` resolved from the compiled manifest.
pub fn experiments_dir() -> PathBuf {
    std::env::var_os("LAB_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("experiments"))
}

/// Load and validate every `*.toml` spec in the experiments directory,
/// sorted by name.
pub fn load_all() -> Result<Vec<ExperimentSpec>, SpecError> {
    let dir = experiments_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read spec dir {}: {e}", dir.display()))
        .map(|e| e.expect("spec dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    let mut specs = Vec::new();
    for p in &paths {
        let src = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read spec {}: {e}", p.display()));
        let file = p
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        specs.push(parse_spec(&file, &src)?);
    }
    specs.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(specs)
}

/// Parse one spec document and validate it against the live registries.
pub fn parse_spec(file: &str, src: &str) -> Result<ExperimentSpec, SpecError> {
    let root = toml::parse(src).map_err(|e| serr(file, e.span, e.msg))?;
    let str_of = |v: &Spanned<TomlValue>, what: &str| -> Result<String, SpecError> {
        match &v.value {
            TomlValue::Str(s) => Ok(s.clone()),
            other => Err(serr(
                file,
                v.span,
                format!("{what} must be a string, got {}", other.type_name()),
            )),
        }
    };
    let int_of = |v: &Spanned<TomlValue>, what: &str| -> Result<i64, SpecError> {
        match &v.value {
            TomlValue::Int(i) => Ok(*i),
            other => Err(serr(
                file,
                v.span,
                format!("{what} must be an integer, got {}", other.type_name()),
            )),
        }
    };

    let name_v = root
        .value("name")
        .ok_or_else(|| serr(file, root.span, "missing required key `name`"))?;
    let name = str_of(name_v, "`name`")?;
    let driver_v = root
        .value("driver")
        .ok_or_else(|| serr(file, root.span, "missing required key `driver`"))?;
    let driver_s = str_of(driver_v, "`driver`")?;
    let driver = Driver::parse(&driver_s).ok_or_else(|| {
        let known: Vec<&str> = Driver::ALL.iter().map(|(n, _)| *n).collect();
        serr(
            file,
            driver_v.span,
            format!("unknown driver {driver_s:?} (expected one of {known:?})"),
        )
    })?;
    let reps = match root.value("reps") {
        Some(v) => {
            let r = int_of(v, "`reps`")?;
            if r < 1 {
                return Err(serr(file, v.span, format!("`reps` must be >= 1, got {r}")));
            }
            r as u64
        }
        None => 1,
    };

    let params = match root.get("params") {
        Some(Item::Table(t)) => table_params(file, t)?,
        Some(_) => return Err(serr(file, root.span, "`params` must be a table")),
        None => Params::default(),
    };

    let mut variants = Vec::new();
    if let Some(vs) = root.array_of_tables("variant") {
        for vt in vs {
            let nv = vt
                .value("name")
                .ok_or_else(|| serr(file, vt.span, "[[variant]] missing `name`"))?;
            let vname = str_of(nv, "variant `name`")?;
            if variants.iter().any(|v: &Variant| v.name == vname) {
                return Err(serr(file, nv.span, format!("duplicate variant {vname:?}")));
            }
            let vparams = table_params_except(file, vt, &["name"])?;
            variants.push(Variant {
                name: vname,
                params: vparams,
            });
        }
    }

    let scenarios = name_list(file, &root, "scenarios")?;
    let pipelines = name_list(file, &root, "pipelines")?;
    validate_dims(file, driver, &scenarios, &pipelines)?;

    let mut profiles = BTreeMap::new();
    if let Some(pt) = root.table("profile") {
        for (key, item) in &pt.entries {
            let t = match item {
                Item::Table(t) => t,
                _ => {
                    return Err(serr(
                        file,
                        key.span,
                        format!("[profile.{}] must be a table", key.value),
                    ))
                }
            };
            let p_reps = match t.value("reps") {
                Some(v) => {
                    let r = int_of(v, "profile `reps`")?;
                    if r < 1 {
                        return Err(serr(file, v.span, format!("`reps` must be >= 1, got {r}")));
                    }
                    Some(r as u64)
                }
                None => None,
            };
            let p_scenarios = name_list(file, t, "scenarios")?;
            let p_pipelines = name_list(file, t, "pipelines")?;
            validate_dims(file, driver, &p_scenarios, &p_pipelines)?;
            let p_variants = name_list_raw(file, t, "variants")?;
            for v in &p_variants {
                if !variants.iter().any(|x| x.name == v.value) {
                    let known: Vec<&str> = variants.iter().map(|x| x.name.as_str()).collect();
                    return Err(serr(
                        file,
                        v.span,
                        format!("unknown variant {:?} (expected one of {known:?})", v.value),
                    ));
                }
            }
            let p_params =
                table_params_except(file, t, &["reps", "scenarios", "pipelines", "variants"])?;
            profiles.insert(
                key.value.clone(),
                Profile {
                    params: p_params,
                    variants: p_variants.into_iter().map(|v| v.value).collect(),
                    scenarios: p_scenarios,
                    pipelines: p_pipelines,
                    reps: p_reps,
                },
            );
        }
    }
    if profiles.is_empty() {
        return Err(serr(
            file,
            root.span,
            "spec defines no [profile.*] tables (need at least `quick`)",
        ));
    }

    Ok(ExperimentSpec {
        name,
        driver,
        reps,
        params,
        variants,
        scenarios,
        pipelines,
        profiles,
    })
}

/// Every scalar entry of a table as params (arrays/sub-tables rejected).
fn table_params(file: &str, t: &Table) -> Result<Params, SpecError> {
    table_params_except(file, t, &[])
}

fn table_params_except(file: &str, t: &Table, skip: &[&str]) -> Result<Params, SpecError> {
    let mut out = Params::default();
    for (k, item) in &t.entries {
        if skip.contains(&k.value.as_str()) {
            continue;
        }
        let v = match item {
            Item::Value(v) => v,
            _ => continue, // nested tables handled by dedicated keys
        };
        let pv = match &v.value {
            TomlValue::Int(i) => ParamValue::Int(*i),
            TomlValue::Float(x) => ParamValue::Float(*x),
            TomlValue::Str(s) => ParamValue::Str(s.clone()),
            TomlValue::Bool(b) => ParamValue::Bool(*b),
            TomlValue::Array(_) => {
                return Err(serr(
                    file,
                    v.span,
                    format!("param {:?} must be a scalar, got an array", k.value),
                ))
            }
        };
        out.0.insert(k.value.clone(), pv);
    }
    Ok(out)
}

/// A `key = ["a", "b"]` list of names with spans preserved.
fn name_list_raw(file: &str, t: &Table, key: &str) -> Result<Vec<Spanned<String>>, SpecError> {
    let Some(v) = t.value(key) else {
        return Ok(Vec::new());
    };
    let items = match &v.value {
        TomlValue::Array(items) => items,
        other => {
            return Err(serr(
                file,
                v.span,
                format!(
                    "`{key}` must be an array of strings, got {}",
                    other.type_name()
                ),
            ))
        }
    };
    items
        .iter()
        .map(|it| match &it.value {
            TomlValue::Str(s) => Ok(Spanned {
                span: it.span,
                value: s.clone(),
            }),
            other => Err(serr(
                file,
                it.span,
                format!("`{key}` entries must be strings, got {}", other.type_name()),
            )),
        })
        .collect()
}

/// A validated scenario/pipeline name list (matrix dimensions).
fn name_list(file: &str, t: &Table, key: &str) -> Result<Vec<String>, SpecError> {
    let raw = name_list_raw(file, t, key)?;
    match key {
        "scenarios" => {
            let known: Vec<String> = scenarios::corpus()
                .iter()
                .map(|s| s.name.to_string())
                .collect();
            for s in &raw {
                if !known.contains(&s.value) {
                    return Err(serr(
                        file,
                        s.span,
                        format!("unknown scenario {:?} (expected one of {known:?})", s.value),
                    ));
                }
            }
        }
        "pipelines" => {
            let known: Vec<&'static str> = scenarios::all_pipelines()
                .iter()
                .map(|p| p.name())
                .collect();
            for s in &raw {
                if !known.iter().any(|k| *k == s.value) {
                    return Err(serr(
                        file,
                        s.span,
                        format!("unknown pipeline {:?} (expected one of {known:?})", s.value),
                    ));
                }
            }
        }
        _ => {}
    }
    Ok(raw.into_iter().map(|s| s.value).collect())
}

/// Scenario/pipeline restrictions only make sense for the matrix driver.
fn validate_dims(
    file: &str,
    driver: Driver,
    scenarios: &[String],
    pipelines: &[String],
) -> Result<(), SpecError> {
    if driver != Driver::Matrix && (!scenarios.is_empty() || !pipelines.is_empty()) {
        return Err(serr(
            file,
            Span { line: 1, col: 1 },
            format!(
                "`scenarios`/`pipelines` dimensions are only valid for the matrix driver, not {:?}",
                driver.name()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
name = "demo"
driver = "engine"
reps = 2

[params]
n = 100
keep = 0.5

[profile.quick]
n = 10
"#;

    #[test]
    fn parses_a_minimal_spec() {
        let s = parse_spec("demo.toml", MINIMAL).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.driver, Driver::Engine);
        assert_eq!(s.reps, 2);
        assert_eq!(s.params.usize("n", 0), 100);
        assert_eq!(s.params.f64("keep", 0.0), 0.5);
        let quick = &s.profiles["quick"];
        assert_eq!(s.params.overlaid(&quick.params).usize("n", 0), 10);
    }

    #[test]
    fn unknown_driver_points_at_the_token() {
        let e = parse_spec(
            "x.toml",
            "name = \"x\"\ndriver = \"warp\"\n[profile.quick]\nn = 1\n",
        )
        .unwrap_err();
        assert_eq!(e.span.line, 2);
        assert!(e.msg.contains("unknown driver \"warp\""), "{e}");
        assert!(e.to_string().starts_with("x.toml:2:"), "{e}");
    }

    #[test]
    fn unknown_scenario_and_pipeline_are_span_errors() {
        let doc = "name = \"m\"\ndriver = \"matrix\"\nscenarios = [\"grid/unit\", \"nope/missing\"]\n[profile.quick]\n";
        let e = parse_spec("m.toml", doc).unwrap_err();
        assert_eq!(e.span.line, 3, "{e}");
        assert!(e.msg.contains("unknown scenario \"nope/missing\""), "{e}");
        assert!(e.msg.contains("grid/unit"), "expected-names list: {e}");

        let doc = "name = \"m\"\ndriver = \"matrix\"\npipelines = [\"ssp\"]\n[profile.quick]\n";
        let e = parse_spec("m.toml", doc).unwrap_err();
        assert_eq!(e.span.line, 3, "{e}");
        assert!(e.msg.contains("unknown pipeline \"ssp\""), "{e}");
        assert!(e.msg.contains("sssp"), "expected-names list: {e}");
    }

    #[test]
    fn dims_rejected_off_matrix_and_profiles_required() {
        let doc =
            "name = \"e\"\ndriver = \"engine\"\nscenarios = [\"grid/unit\"]\n[profile.quick]\n";
        let e = parse_spec("e.toml", doc).unwrap_err();
        assert!(e.msg.contains("only valid for the matrix driver"), "{e}");

        let e = parse_spec("e.toml", "name = \"e\"\ndriver = \"engine\"\n").unwrap_err();
        assert!(e.msg.contains("no [profile.*]"), "{e}");
    }

    #[test]
    fn variants_parse_and_unknown_profile_variant_rejected() {
        let doc = r#"
name = "s"
driver = "serve"

[[variant]]
name = "flat"
layout = "flat"

[[variant]]
name = "packed"
layout = "packed"

[profile.quick]
variants = ["flat"]
"#;
        let s = parse_spec("s.toml", doc).unwrap();
        assert_eq!(s.variants.len(), 2);
        assert_eq!(s.variants[1].params.str("layout", ""), "packed");
        assert_eq!(s.profiles["quick"].variants, vec!["flat".to_string()]);

        let bad = doc.replace("variants = [\"flat\"]", "variants = [\"mystery\"]");
        let e = parse_spec("s.toml", &bad).unwrap_err();
        assert!(e.msg.contains("unknown variant \"mystery\""), "{e}");
    }
}
